//! Plain-text summary table: the single renderer behind both the
//! simulator's `SimReport` and the runtime's `RunReport` summaries, so the
//! two engines print per-kernel statistics in one format.

use std::fmt::Write as _;

use crate::event::TraceEvent;
use crate::snapshot::TraceSnapshot;

/// One kernel row of the summary table.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelRow {
    /// Kernel instance name.
    pub name: String,
    /// Completed iterations.
    pub iterations: u64,
    /// Busy time attributed to the kernel — simulator cycles or runtime
    /// nanoseconds, depending on the producing engine.
    pub busy: u64,
    /// Busy fraction of the run span (0..=1).
    pub utilization: f64,
    /// Mean interval between iteration completions, in ns.
    pub interval_ns: Option<f64>,
    /// Blocked iteration attempts / channel blocks.
    pub stalls: u64,
}

/// One histogram's quantile line, rendered under the kernel table.
#[derive(Clone, Debug, PartialEq)]
pub struct QuantileRow {
    /// Rendered metric key (e.g. `poll_ns{sample_every=64}`).
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Estimated median (see [`crate::metrics::HistogramSnapshot::quantile`]).
    pub p50: f64,
    /// Estimated 90th percentile.
    pub p90: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
    /// Largest observed value (exact).
    pub max: u64,
}

/// The whole table plus run-level footer facts.
#[derive(Clone, Debug, Default)]
pub struct SummaryTable {
    pub rows: Vec<KernelRow>,
    /// Label for the `busy` column (`"busy cycles"` or `"busy ns"`).
    pub busy_label: &'static str,
    /// Total run span in ns.
    pub total_ns: f64,
    /// Blocks delivered at the sink (0 when not block-structured).
    pub blocks: usize,
    /// Steady-state ns per output block, when measurable.
    pub ns_per_block: Option<f64>,
    /// Quantile estimates for every registered histogram.
    pub quantiles: Vec<QuantileRow>,
    /// Trace records the ring-buffer sink had to discard; nonzero means the
    /// per-kernel figures above undercount.
    pub dropped: u64,
}

impl SummaryTable {
    /// Render as a fixed-width text table.
    pub fn render(&self) -> String {
        let busy_label = if self.busy_label.is_empty() {
            "busy"
        } else {
            self.busy_label
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<24} {:>10} {:>12} {:>8} {:>12} {:>8}",
            "kernel", "iters", busy_label, "util", "interval ns", "stalls"
        );
        for k in &self.rows {
            let _ = writeln!(
                out,
                "{:<24} {:>10} {:>12} {:>7.1}% {:>12} {:>8}",
                k.name,
                k.iterations,
                k.busy,
                k.utilization * 100.0,
                k.interval_ns
                    .map(|v| format!("{v:.1}"))
                    .unwrap_or_else(|| "-".into()),
                k.stalls,
            );
        }
        if !self.quantiles.is_empty() {
            let _ = writeln!(
                out,
                "{:<32} {:>8} {:>10} {:>10} {:>10} {:>10}",
                "histogram", "count", "p50", "p90", "p99", "max"
            );
            for q in &self.quantiles {
                let _ = writeln!(
                    out,
                    "{:<32} {:>8} {:>10.1} {:>10.1} {:>10.1} {:>10}",
                    q.name, q.count, q.p50, q.p90, q.p99, q.max
                );
            }
        }
        let _ = writeln!(
            out,
            "total: {:.1} ns, {} blocks{}",
            self.total_ns,
            self.blocks,
            self.ns_per_block
                .map(|v| format!(", {v:.1} ns/block"))
                .unwrap_or_default(),
        );
        if self.dropped > 0 {
            let _ = writeln!(
                out,
                "warning: {} trace records dropped (ring buffer full); figures above undercount",
                self.dropped,
            );
        }
        out
    }
}

/// Derive per-kernel rows from raw trace records: iterations and busy time
/// from `IterationEnd` / poll slices, stalls from `Stall` events plus the
/// per-kernel `stalls` counter in the metrics registry.
pub fn summarize(snapshot: &TraceSnapshot) -> SummaryTable {
    let (begin, end) = snapshot.span_ns();
    let span = (end - begin).max(1) as f64;
    let n = snapshot.kernels.len();
    let mut iterations = vec![0u64; n];
    let mut busy = vec![0u64; n];
    let mut stalls = vec![0u64; n];
    let mut first_end = vec![None::<u64>; n];
    let mut last_end = vec![0u64; n];
    let mut open_polls = vec![None::<u64>; n];
    for r in &snapshot.records {
        match r.event {
            TraceEvent::IterationEnd {
                kernel, start_ns, ..
            } => {
                let i = kernel.0 as usize;
                if i >= n {
                    continue;
                }
                iterations[i] += 1;
                busy[i] += r.ts_ns.saturating_sub(start_ns);
                if first_end[i].is_none() {
                    first_end[i] = Some(r.ts_ns);
                }
                last_end[i] = r.ts_ns;
            }
            TraceEvent::PollBegin { kernel } => {
                if let Some(slot) = open_polls.get_mut(kernel.0 as usize) {
                    *slot = Some(r.ts_ns);
                }
            }
            TraceEvent::PollEnd { kernel, .. } => {
                let i = kernel.0 as usize;
                if i >= n {
                    continue;
                }
                if let Some(b) = open_polls[i].take() {
                    busy[i] += r.ts_ns.saturating_sub(b);
                }
            }
            TraceEvent::Stall { kernel } => {
                if let Some(slot) = stalls.get_mut(kernel.0 as usize) {
                    *slot += 1;
                }
            }
            _ => {}
        }
    }
    // Stall counters registered out-of-band (e.g. channel block counts
    // attributed to a kernel) supplement in-band Stall events.
    for (key, value) in &snapshot.metrics.counters {
        if key.name != "stalls" {
            continue;
        }
        if let Some((_, kernel)) = key.labels.iter().find(|(k, _)| k == "kernel") {
            if let Some(i) = snapshot.kernels.iter().position(|k| k == kernel) {
                stalls[i] += value;
            }
        }
    }
    let rows = snapshot
        .kernels
        .iter()
        .enumerate()
        .map(|(i, name)| KernelRow {
            name: name.clone(),
            iterations: iterations[i],
            busy: busy[i],
            utilization: busy[i] as f64 / span,
            interval_ns: match (first_end[i], iterations[i]) {
                (Some(first), iters) if iters >= 2 => {
                    Some((last_end[i] - first) as f64 / (iters - 1) as f64)
                }
                _ => None,
            },
            stalls: stalls[i],
        })
        .collect();
    let quantiles = snapshot
        .metrics
        .histograms
        .iter()
        .map(|(key, hist)| QuantileRow {
            name: key.render(),
            count: hist.count,
            p50: hist.p50(),
            p90: hist.p90(),
            p99: hist.p99(),
            max: hist.max,
        })
        .collect();
    SummaryTable {
        rows,
        busy_label: "busy ns",
        total_ns: (end - begin) as f64,
        blocks: 0,
        ns_per_block: None,
        quantiles,
        dropped: snapshot.dropped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{KernelRef, TraceRecord};

    fn iter_end(kernel: u32, iteration: u64, start: u64, end: u64) -> TraceRecord {
        TraceRecord {
            ts_ns: end,
            event: TraceEvent::IterationEnd {
                kernel: KernelRef(kernel),
                iteration,
                start_ns: start,
            },
        }
    }

    #[test]
    fn summarize_counts_iterations_busy_and_intervals() {
        let snapshot = TraceSnapshot {
            kernels: vec!["a".into(), "b".into()],
            records: vec![
                TraceRecord {
                    ts_ns: 0,
                    event: TraceEvent::RunBegin,
                },
                iter_end(0, 0, 10, 20),
                iter_end(0, 1, 30, 40),
                iter_end(1, 0, 15, 35),
                TraceRecord {
                    ts_ns: 100,
                    event: TraceEvent::Stall {
                        kernel: KernelRef(1),
                    },
                },
                TraceRecord {
                    ts_ns: 200,
                    event: TraceEvent::RunEnd,
                },
            ],
            ..Default::default()
        };
        let table = summarize(&snapshot);
        assert_eq!(table.rows.len(), 2);
        let a = &table.rows[0];
        assert_eq!(a.iterations, 2);
        assert_eq!(a.busy, 20);
        assert_eq!(a.interval_ns, Some(20.0));
        assert_eq!(a.stalls, 0);
        let b = &table.rows[1];
        assert_eq!(b.iterations, 1);
        assert_eq!(b.interval_ns, None);
        assert_eq!(b.stalls, 1);
        assert_eq!(table.total_ns, 200.0);
    }

    #[test]
    fn render_includes_rows_and_footer() {
        let table = SummaryTable {
            rows: vec![KernelRow {
                name: "mac_0".into(),
                iterations: 64,
                busy: 640,
                utilization: 0.5,
                interval_ns: Some(12.5),
                stalls: 3,
            }],
            busy_label: "busy cycles",
            total_ns: 1280.0,
            blocks: 16,
            ns_per_block: Some(80.0),
            ..Default::default()
        };
        let text = table.render();
        assert!(text.contains("mac_0"));
        assert!(text.contains("busy cycles"));
        assert!(text.contains("50.0%"));
        assert!(text.contains("ns/block"));
        assert!(text.contains("16 blocks"));
        assert!(!text.contains("warning:"));
    }

    #[test]
    fn render_warns_about_dropped_records_and_lists_quantiles() {
        let table = SummaryTable {
            busy_label: "busy ns",
            quantiles: vec![QuantileRow {
                name: "poll_ns{sample_every=64}".into(),
                count: 128,
                p50: 90.0,
                p90: 400.0,
                p99: 900.0,
                max: 1024,
            }],
            dropped: 7,
            ..Default::default()
        };
        let text = table.render();
        assert!(text.contains("histogram"));
        assert!(text.contains("poll_ns{sample_every=64}"));
        assert!(text.contains("p99"));
        assert!(text.contains("warning: 7 trace records dropped"));
    }

    #[test]
    fn summarize_carries_dropped_count_and_histogram_quantiles() {
        let reg = crate::metrics::MetricsRegistry::new();
        let h = reg.histogram("poll_ns", &[]);
        for v in [4u64, 5, 6, 7] {
            h.observe(v);
        }
        let snapshot = TraceSnapshot {
            dropped: 3,
            metrics: reg.snapshot(),
            ..Default::default()
        };
        let table = summarize(&snapshot);
        assert_eq!(table.dropped, 3);
        assert_eq!(table.quantiles.len(), 1);
        assert_eq!(table.quantiles[0].count, 4);
        assert!(table.render().contains("warning: 3 trace records dropped"));
    }
}

//! Flamegraph folded-stacks export: collapse per-kernel busy time from the
//! trace event stream into the `frame;frame value` text format consumed by
//! `inferno`, `flamegraph.pl` and speedscope. The same attribution rules as
//! the summary table apply: `IterationEnd` spans and `PollBegin`/`PollEnd`
//! slices, kept as separate leaf frames so the flamegraph distinguishes
//! productive iterations from scheduler polls.

use std::fmt::Write as _;

use crate::event::TraceEvent;
use crate::snapshot::TraceSnapshot;

/// Render folded stacks with `root` as the shared base frame. One line per
/// kernel and attribution kind (`iteration` / `poll`), zero-valued frames
/// omitted; values are nanoseconds.
pub fn folded_stacks(snapshot: &TraceSnapshot, root: &str) -> String {
    let n = snapshot.kernels.len();
    let mut iteration_ns = vec![0u64; n];
    let mut poll_ns = vec![0u64; n];
    let mut open_polls = vec![None::<u64>; n];
    for r in &snapshot.records {
        match r.event {
            TraceEvent::IterationEnd {
                kernel, start_ns, ..
            } => {
                if let Some(slot) = iteration_ns.get_mut(kernel.0 as usize) {
                    *slot += r.ts_ns.saturating_sub(start_ns);
                }
            }
            TraceEvent::PollBegin { kernel } => {
                if let Some(slot) = open_polls.get_mut(kernel.0 as usize) {
                    *slot = Some(r.ts_ns);
                }
            }
            TraceEvent::PollEnd { kernel, .. } => {
                let i = kernel.0 as usize;
                if i >= n {
                    continue;
                }
                if let Some(b) = open_polls[i].take() {
                    poll_ns[i] += r.ts_ns.saturating_sub(b);
                }
            }
            _ => {}
        }
    }
    let mut out = String::new();
    for (i, name) in snapshot.kernels.iter().enumerate() {
        // Semicolons are frame separators in the folded format; scrub them
        // out of kernel names so frames stay well-formed.
        let frame = name.replace(';', "_");
        if iteration_ns[i] > 0 {
            let _ = writeln!(out, "{root};{frame};iteration {}", iteration_ns[i]);
        }
        if poll_ns[i] > 0 {
            let _ = writeln!(out, "{root};{frame};poll {}", poll_ns[i]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{KernelRef, TraceRecord};

    #[test]
    fn folds_iteration_and_poll_time_per_kernel() {
        let snapshot = TraceSnapshot {
            kernels: vec!["mac_0".into(), "idle_0".into()],
            records: vec![
                TraceRecord {
                    ts_ns: 20,
                    event: TraceEvent::IterationEnd {
                        kernel: KernelRef(0),
                        iteration: 0,
                        start_ns: 5,
                    },
                },
                TraceRecord {
                    ts_ns: 30,
                    event: TraceEvent::PollBegin {
                        kernel: KernelRef(0),
                    },
                },
                TraceRecord {
                    ts_ns: 42,
                    event: TraceEvent::PollEnd {
                        kernel: KernelRef(0),
                        pending: true,
                    },
                },
            ],
            ..Default::default()
        };
        let text = folded_stacks(&snapshot, "run");
        assert!(text.contains("run;mac_0;iteration 15"));
        assert!(text.contains("run;mac_0;poll 12"));
        // Idle kernel contributes no frames at all.
        assert!(!text.contains("idle_0"));
        // Every line is `stack space value`.
        for line in text.lines() {
            let (stack, value) = line.rsplit_once(' ').unwrap();
            assert!(stack.starts_with("run;"));
            value.parse::<u64>().unwrap();
        }
    }
}

//! Exporters over a [`crate::TraceSnapshot`]: Chrome-trace JSON for
//! `chrome://tracing` / Perfetto, a plain-text summary table, and a
//! machine-readable JSON snapshot.

pub mod chrome;
pub mod json;
pub mod summary;

//! Exporters over a [`crate::TraceSnapshot`]: Chrome-trace JSON for
//! `chrome://tracing` / Perfetto, a plain-text summary table, a
//! machine-readable JSON snapshot, Prometheus text exposition for live
//! scraping, and flamegraph folded stacks.

pub mod chrome;
pub mod folded;
pub mod json;
pub mod prometheus;
pub mod summary;

//! Chrome-trace (Trace Event Format) export.
//!
//! Produces JSON loadable by `chrome://tracing` and `ui.perfetto.dev`:
//! one track (`tid`) per kernel instance carrying duration slices for
//! iterations and polls, counter tracks for channel occupancy, async
//! slices for blocked intervals, and instant markers for stalls and
//! scheduler wakes. Timestamps are microseconds (f64, so nanosecond
//! resolution survives).

use std::collections::HashMap;

use crate::event::{BlockSide, TraceEvent};
use crate::snapshot::TraceSnapshot;

fn us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

fn side_name(side: BlockSide) -> &'static str {
    match side {
        BlockSide::Write => "write blocked",
        BlockSide::Read => "read blocked",
    }
}

/// Where one snapshot's events land inside a (possibly multi-process)
/// Chrome-trace document. The single-run exporters use the default
/// placement: process 1, bare kernel-name tracks, timestamps as recorded.
/// `cgsim-pool` gives each worker its own `pid` lane, prefixes tracks with
/// the job label, and shifts each job onto the pool's shared clock.
#[derive(Clone, Debug)]
pub struct TrackPlacement {
    /// Chrome-trace process id (one lane per worker in pool exports).
    pub pid: u64,
    /// Optional prefix for every track (`tid`) name, rendered `prefix/tid`.
    pub lane: Option<String>,
    /// Added to every record timestamp, mapping a per-run epoch onto a
    /// shared trace clock (nanoseconds).
    pub ts_offset_ns: u64,
}

impl Default for TrackPlacement {
    fn default() -> Self {
        TrackPlacement {
            pid: 1,
            lane: None,
            ts_offset_ns: 0,
        }
    }
}

impl TrackPlacement {
    fn tid(&self, name: String) -> String {
        match &self.lane {
            Some(prefix) => format!("{prefix}/{name}"),
            None => name,
        }
    }
}

/// Build the `traceEvents` array for a snapshot under the default
/// placement.
pub fn chrome_trace_events(snapshot: &TraceSnapshot) -> Vec<serde_json::Value> {
    chrome_trace_events_placed(snapshot, &TrackPlacement::default())
}

/// Build the `traceEvents` array for a snapshot placed at `place` — the
/// building block for merging many runs (pool jobs, oracle legs) into one
/// document.
pub fn chrome_trace_events_placed(
    snapshot: &TraceSnapshot,
    place: &TrackPlacement,
) -> Vec<serde_json::Value> {
    let pid = place.pid;
    let off = place.ts_offset_ns;
    let mut events = Vec::new();
    // Open polls, keyed by kernel: PollBegin timestamp awaiting its PollEnd.
    let mut open_polls: HashMap<u32, u64> = HashMap::new();
    for record in &snapshot.records {
        let ts = record.ts_ns;
        match record.event {
            TraceEvent::IterationEnd {
                kernel,
                iteration,
                start_ns,
            } => {
                events.push(serde_json::json!({
                    "name": format!("iter {iteration}"),
                    "cat": "kernel",
                    "ph": "X",
                    "ts": us(start_ns + off),
                    "dur": us(ts.saturating_sub(start_ns)),
                    "pid": pid,
                    "tid": place.tid(snapshot.kernel_name(kernel)),
                }));
            }
            TraceEvent::PollBegin { kernel } => {
                open_polls.insert(kernel.0, ts);
            }
            TraceEvent::PollEnd { kernel, pending } => {
                // An unmatched PollEnd (begin evicted from the ring) is
                // rendered as a zero-length slice at its own timestamp.
                let begin = open_polls.remove(&kernel.0).unwrap_or(ts);
                events.push(serde_json::json!({
                    "name": "poll",
                    "cat": "runtime",
                    "ph": "X",
                    "ts": us(begin + off),
                    "dur": us(ts.saturating_sub(begin)),
                    "pid": pid,
                    "tid": place.tid(snapshot.kernel_name(kernel)),
                    "args": serde_json::json!({ "pending": pending }),
                }));
            }
            TraceEvent::SchedulerWake { kernel } => {
                events.push(serde_json::json!({
                    "name": "wake",
                    "cat": "sched",
                    "ph": "i",
                    "s": "t",
                    "ts": us(ts + off),
                    "pid": pid,
                    "tid": place.tid(snapshot.kernel_name(kernel)),
                }));
            }
            TraceEvent::ChannelPush { channel, occupancy }
            | TraceEvent::ChannelPop { channel, occupancy } => {
                events.push(serde_json::json!({
                    "name": format!("occupancy {}", snapshot.channel_name(channel)),
                    "cat": "channel",
                    "ph": "C",
                    "ts": us(ts + off),
                    "pid": pid,
                    "args": serde_json::json!({ "elements": occupancy }),
                }));
            }
            TraceEvent::ChannelBlock { channel, side } => {
                events.push(serde_json::json!({
                    "name": side_name(side),
                    "cat": "channel",
                    "ph": "b",
                    "id": channel.0 as u64 * 2 + matches!(side, BlockSide::Read) as u64,
                    "ts": us(ts + off),
                    "pid": pid,
                    "tid": place.tid(snapshot.channel_name(channel)),
                }));
            }
            TraceEvent::ChannelUnblock { channel, side } => {
                events.push(serde_json::json!({
                    "name": side_name(side),
                    "cat": "channel",
                    "ph": "e",
                    "id": channel.0 as u64 * 2 + matches!(side, BlockSide::Read) as u64,
                    "ts": us(ts + off),
                    "pid": pid,
                    "tid": place.tid(snapshot.channel_name(channel)),
                }));
            }
            TraceEvent::Stall { kernel } => {
                events.push(serde_json::json!({
                    "name": "stall",
                    "cat": "stall",
                    "ph": "i",
                    "s": "t",
                    "ts": us(ts + off),
                    "pid": pid,
                    "tid": place.tid(snapshot.kernel_name(kernel)),
                }));
            }
            TraceEvent::SourceIo { kernel, elements } | TraceEvent::SinkIo { kernel, elements } => {
                events.push(serde_json::json!({
                    "name": record.event.kind(),
                    "cat": "io",
                    "ph": "i",
                    "s": "t",
                    "ts": us(ts + off),
                    "pid": pid,
                    "tid": place.tid(snapshot.kernel_name(kernel)),
                    "args": serde_json::json!({ "elements": elements }),
                }));
            }
            // Run markers delimit the span; they carry no track of their
            // own and are deliberately not exported.
            TraceEvent::RunBegin | TraceEvent::RunEnd => {}
        }
    }
    events
}

/// Render a snapshot as a complete Chrome-trace JSON document.
pub fn chrome_trace_json(snapshot: &TraceSnapshot) -> String {
    let events = chrome_trace_events(snapshot);
    serde_json::to_string_pretty(&serde_json::json!({
        "traceEvents": serde_json::Value::Array(events),
        "displayTimeUnit": "ns",
    }))
    .expect("chrome trace serializes")
}

/// Merge many placed snapshots into one Chrome-trace document. Each part
/// contributes a named process lane (`process_name` metadata + its events
/// under the part's placement) — how the pool renders worker lanes as
/// parallel tracks of one trace.
pub fn chrome_trace_json_multi(parts: &[(String, TrackPlacement, &TraceSnapshot)]) -> String {
    let mut events = Vec::new();
    for (name, place, snapshot) in parts {
        events.push(serde_json::json!({
            "name": "process_name",
            "ph": "M",
            "pid": place.pid,
            "args": serde_json::json!({ "name": name.as_str() }),
        }));
        events.extend(chrome_trace_events_placed(snapshot, place));
    }
    serde_json::to_string_pretty(&serde_json::json!({
        "traceEvents": serde_json::Value::Array(events),
        "displayTimeUnit": "ns",
    }))
    .expect("chrome trace serializes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ChannelRef, KernelRef, TraceRecord};
    use crate::snapshot::ChannelInfo;

    fn snapshot() -> TraceSnapshot {
        TraceSnapshot {
            kernels: vec!["mac_0".into(), "mac_1".into()],
            channels: vec![ChannelInfo {
                name: "c0".into(),
                capacity: 16,
            }],
            records: vec![
                TraceRecord {
                    ts_ns: 0,
                    event: TraceEvent::RunBegin,
                },
                TraceRecord {
                    ts_ns: 100,
                    event: TraceEvent::PollBegin {
                        kernel: KernelRef(0),
                    },
                },
                TraceRecord {
                    ts_ns: 400,
                    event: TraceEvent::PollEnd {
                        kernel: KernelRef(0),
                        pending: true,
                    },
                },
                TraceRecord {
                    ts_ns: 500,
                    event: TraceEvent::ChannelPush {
                        channel: ChannelRef(0),
                        occupancy: 3,
                    },
                },
                TraceRecord {
                    ts_ns: 900,
                    event: TraceEvent::IterationEnd {
                        kernel: KernelRef(1),
                        iteration: 0,
                        start_ns: 600,
                    },
                },
                TraceRecord {
                    ts_ns: 1000,
                    event: TraceEvent::RunEnd,
                },
            ],
            ..Default::default()
        }
    }

    #[test]
    fn iteration_and_poll_become_duration_slices() {
        let events = chrome_trace_events(&snapshot());
        // RunBegin/RunEnd are skipped: poll X, push C, iteration X.
        assert_eq!(events.len(), 3);
        let poll = &events[0];
        assert_eq!(poll["ph"], "X");
        assert_eq!(poll["tid"], "mac_0");
        assert_eq!(poll["ts"], 0.1);
        assert_eq!(poll["dur"], 0.3);
        let push = &events[1];
        assert_eq!(push["ph"], "C");
        let iter = &events[2];
        assert_eq!(iter["ph"], "X");
        assert_eq!(iter["name"], "iter 0");
        assert_eq!(iter["tid"], "mac_1");
        assert_eq!(iter["dur"], 0.3);
    }

    #[test]
    fn placement_shifts_lanes_and_clock() {
        let place = TrackPlacement {
            pid: 7,
            lane: Some("job3".into()),
            ts_offset_ns: 1_000_000,
        };
        let events = chrome_trace_events_placed(&snapshot(), &place);
        let poll = &events[0];
        assert_eq!(poll["pid"], 7);
        assert_eq!(poll["tid"], "job3/mac_0");
        // 100 ns + 1 ms offset, in microseconds.
        assert_eq!(poll["ts"], 1000.1);
    }

    #[test]
    fn multi_document_names_process_lanes() {
        let snap = snapshot();
        let parts = vec![
            ("worker-0".to_string(), TrackPlacement::default(), &snap),
            (
                "worker-1".to_string(),
                TrackPlacement {
                    pid: 2,
                    ..TrackPlacement::default()
                },
                &snap,
            ),
        ];
        let doc = chrome_trace_json_multi(&parts);
        let parsed: serde_json::Value = serde_json::from_str(&doc).unwrap();
        let events = parsed["traceEvents"].as_array().unwrap();
        // 2 × (1 metadata + 3 events).
        assert_eq!(events.len(), 8);
        assert_eq!(events[0]["ph"], "M");
        assert_eq!(events[0]["args"]["name"], "worker-0");
    }

    #[test]
    fn document_parses_back() {
        let doc = chrome_trace_json(&snapshot());
        let parsed: serde_json::Value = serde_json::from_str(&doc).unwrap();
        assert_eq!(parsed["traceEvents"].as_array().unwrap().len(), 3);
        assert_eq!(parsed["displayTimeUnit"], "ns");
    }
}

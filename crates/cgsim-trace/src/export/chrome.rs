//! Chrome-trace (Trace Event Format) export.
//!
//! Produces JSON loadable by `chrome://tracing` and `ui.perfetto.dev`:
//! one track (`tid`) per kernel instance carrying duration slices for
//! iterations and polls, counter tracks for channel occupancy, async
//! slices for blocked intervals, and instant markers for stalls and
//! scheduler wakes. Timestamps are microseconds (f64, so nanosecond
//! resolution survives).

use std::collections::HashMap;

use crate::event::{BlockSide, TraceEvent};
use crate::snapshot::TraceSnapshot;

fn us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

fn side_name(side: BlockSide) -> &'static str {
    match side {
        BlockSide::Write => "write blocked",
        BlockSide::Read => "read blocked",
    }
}

/// Build the `traceEvents` array for a snapshot.
pub fn chrome_trace_events(snapshot: &TraceSnapshot) -> Vec<serde_json::Value> {
    let mut events = Vec::new();
    // Open polls, keyed by kernel: PollBegin timestamp awaiting its PollEnd.
    let mut open_polls: HashMap<u32, u64> = HashMap::new();
    for record in &snapshot.records {
        let ts = record.ts_ns;
        match record.event {
            TraceEvent::IterationEnd {
                kernel,
                iteration,
                start_ns,
            } => {
                events.push(serde_json::json!({
                    "name": format!("iter {iteration}"),
                    "cat": "kernel",
                    "ph": "X",
                    "ts": us(start_ns),
                    "dur": us(ts.saturating_sub(start_ns)),
                    "pid": 1,
                    "tid": snapshot.kernel_name(kernel),
                }));
            }
            TraceEvent::PollBegin { kernel } => {
                open_polls.insert(kernel.0, ts);
            }
            TraceEvent::PollEnd { kernel, pending } => {
                // An unmatched PollEnd (begin evicted from the ring) is
                // rendered as a zero-length slice at its own timestamp.
                let begin = open_polls.remove(&kernel.0).unwrap_or(ts);
                events.push(serde_json::json!({
                    "name": "poll",
                    "cat": "runtime",
                    "ph": "X",
                    "ts": us(begin),
                    "dur": us(ts.saturating_sub(begin)),
                    "pid": 1,
                    "tid": snapshot.kernel_name(kernel),
                    "args": serde_json::json!({ "pending": pending }),
                }));
            }
            TraceEvent::SchedulerWake { kernel } => {
                events.push(serde_json::json!({
                    "name": "wake",
                    "cat": "sched",
                    "ph": "i",
                    "s": "t",
                    "ts": us(ts),
                    "pid": 1,
                    "tid": snapshot.kernel_name(kernel),
                }));
            }
            TraceEvent::ChannelPush { channel, occupancy }
            | TraceEvent::ChannelPop { channel, occupancy } => {
                events.push(serde_json::json!({
                    "name": format!("occupancy {}", snapshot.channel_name(channel)),
                    "cat": "channel",
                    "ph": "C",
                    "ts": us(ts),
                    "pid": 1,
                    "args": serde_json::json!({ "elements": occupancy }),
                }));
            }
            TraceEvent::ChannelBlock { channel, side } => {
                events.push(serde_json::json!({
                    "name": side_name(side),
                    "cat": "channel",
                    "ph": "b",
                    "id": channel.0 as u64 * 2 + matches!(side, BlockSide::Read) as u64,
                    "ts": us(ts),
                    "pid": 1,
                    "tid": snapshot.channel_name(channel),
                }));
            }
            TraceEvent::ChannelUnblock { channel, side } => {
                events.push(serde_json::json!({
                    "name": side_name(side),
                    "cat": "channel",
                    "ph": "e",
                    "id": channel.0 as u64 * 2 + matches!(side, BlockSide::Read) as u64,
                    "ts": us(ts),
                    "pid": 1,
                    "tid": snapshot.channel_name(channel),
                }));
            }
            TraceEvent::Stall { kernel } => {
                events.push(serde_json::json!({
                    "name": "stall",
                    "cat": "stall",
                    "ph": "i",
                    "s": "t",
                    "ts": us(ts),
                    "pid": 1,
                    "tid": snapshot.kernel_name(kernel),
                }));
            }
            TraceEvent::SourceIo { kernel, elements } | TraceEvent::SinkIo { kernel, elements } => {
                events.push(serde_json::json!({
                    "name": record.event.kind(),
                    "cat": "io",
                    "ph": "i",
                    "s": "t",
                    "ts": us(ts),
                    "pid": 1,
                    "tid": snapshot.kernel_name(kernel),
                    "args": serde_json::json!({ "elements": elements }),
                }));
            }
            // Run markers delimit the span; they carry no track of their
            // own and are deliberately not exported.
            TraceEvent::RunBegin | TraceEvent::RunEnd => {}
        }
    }
    events
}

/// Render a snapshot as a complete Chrome-trace JSON document.
pub fn chrome_trace_json(snapshot: &TraceSnapshot) -> String {
    let events = chrome_trace_events(snapshot);
    serde_json::to_string_pretty(&serde_json::json!({
        "traceEvents": serde_json::Value::Array(events),
        "displayTimeUnit": "ns",
    }))
    .expect("chrome trace serializes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ChannelRef, KernelRef, TraceRecord};
    use crate::snapshot::ChannelInfo;

    fn snapshot() -> TraceSnapshot {
        TraceSnapshot {
            kernels: vec!["mac_0".into(), "mac_1".into()],
            channels: vec![ChannelInfo {
                name: "c0".into(),
                capacity: 16,
            }],
            records: vec![
                TraceRecord {
                    ts_ns: 0,
                    event: TraceEvent::RunBegin,
                },
                TraceRecord {
                    ts_ns: 100,
                    event: TraceEvent::PollBegin {
                        kernel: KernelRef(0),
                    },
                },
                TraceRecord {
                    ts_ns: 400,
                    event: TraceEvent::PollEnd {
                        kernel: KernelRef(0),
                        pending: true,
                    },
                },
                TraceRecord {
                    ts_ns: 500,
                    event: TraceEvent::ChannelPush {
                        channel: ChannelRef(0),
                        occupancy: 3,
                    },
                },
                TraceRecord {
                    ts_ns: 900,
                    event: TraceEvent::IterationEnd {
                        kernel: KernelRef(1),
                        iteration: 0,
                        start_ns: 600,
                    },
                },
                TraceRecord {
                    ts_ns: 1000,
                    event: TraceEvent::RunEnd,
                },
            ],
            ..Default::default()
        }
    }

    #[test]
    fn iteration_and_poll_become_duration_slices() {
        let events = chrome_trace_events(&snapshot());
        // RunBegin/RunEnd are skipped: poll X, push C, iteration X.
        assert_eq!(events.len(), 3);
        let poll = &events[0];
        assert_eq!(poll["ph"], "X");
        assert_eq!(poll["tid"], "mac_0");
        assert_eq!(poll["ts"], 0.1);
        assert_eq!(poll["dur"], 0.3);
        let push = &events[1];
        assert_eq!(push["ph"], "C");
        let iter = &events[2];
        assert_eq!(iter["ph"], "X");
        assert_eq!(iter["name"], "iter 0");
        assert_eq!(iter["tid"], "mac_1");
        assert_eq!(iter["dur"], 0.3);
    }

    #[test]
    fn document_parses_back() {
        let doc = chrome_trace_json(&snapshot());
        let parsed: serde_json::Value = serde_json::from_str(&doc).unwrap();
        assert_eq!(parsed["traceEvents"].as_array().unwrap().len(), 3);
        assert_eq!(parsed["displayTimeUnit"], "ns");
    }
}

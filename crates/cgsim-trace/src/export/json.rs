//! Machine-readable JSON snapshot: metrics and per-kernel summary, for
//! regression dashboards and scripted comparison (not the raw event list —
//! that is what the Chrome export is for).

use crate::export::summary::summarize;
use crate::snapshot::TraceSnapshot;

/// Build the snapshot document as a JSON value.
pub fn snapshot_value(snapshot: &TraceSnapshot) -> serde_json::Value {
    let table = summarize(snapshot);
    let kernels: Vec<serde_json::Value> = table
        .rows
        .iter()
        .map(|row| {
            serde_json::json!({
                "name": row.name.clone(),
                "iterations": row.iterations,
                "busy_ns": row.busy,
                "utilization": row.utilization,
                "interval_ns": row
                    .interval_ns
                    .map(serde_json::Value::from)
                    .unwrap_or(serde_json::Value::Null),
                "stalls": row.stalls,
            })
        })
        .collect();
    let channels: Vec<serde_json::Value> = snapshot
        .channels
        .iter()
        .map(|c| {
            serde_json::json!({
                "name": c.name.clone(),
                "capacity": c.capacity,
            })
        })
        .collect();
    let counters: Vec<(String, serde_json::Value)> = snapshot
        .metrics
        .counters
        .iter()
        .map(|(k, v)| (k.render(), serde_json::Value::from(*v)))
        .collect();
    let gauges: Vec<(String, serde_json::Value)> = snapshot
        .metrics
        .gauges
        .iter()
        .map(|(k, v)| (k.render(), serde_json::Value::from(*v)))
        .collect();
    let histograms: Vec<(String, serde_json::Value)> = snapshot
        .metrics
        .histograms
        .iter()
        .map(|(k, h)| {
            (
                k.render(),
                serde_json::json!({
                    "count": h.count,
                    "sum": h.sum,
                    "max": h.max,
                    "log2_buckets": serde_json::Value::Array(
                        h.buckets.iter().map(|&b| serde_json::Value::from(b)).collect(),
                    ),
                }),
            )
        })
        .collect();
    serde_json::json!({
        "span_ns": table.total_ns,
        "records": snapshot.records.len(),
        "dropped": snapshot.dropped,
        "kernels": serde_json::Value::Array(kernels),
        "channels": serde_json::Value::Array(channels),
        "counters": serde_json::Value::Object(counters),
        "gauges": serde_json::Value::Object(gauges),
        "histograms": serde_json::Value::Object(histograms),
    })
}

/// Render the snapshot document as pretty JSON.
pub fn snapshot_json(snapshot: &TraceSnapshot) -> String {
    serde_json::to_string_pretty(&snapshot_value(snapshot)).expect("snapshot serializes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{KernelRef, TraceEvent, TraceRecord};

    #[test]
    fn snapshot_json_parses_back_with_kernel_rows() {
        let snapshot = TraceSnapshot {
            kernels: vec!["k0".into()],
            records: vec![TraceRecord {
                ts_ns: 50,
                event: TraceEvent::IterationEnd {
                    kernel: KernelRef(0),
                    iteration: 0,
                    start_ns: 10,
                },
            }],
            ..Default::default()
        };
        let doc = snapshot_json(&snapshot);
        let parsed: serde_json::Value = serde_json::from_str(&doc).unwrap();
        assert_eq!(parsed["records"], 1);
        let kernels = parsed["kernels"].as_array().unwrap();
        assert_eq!(kernels.len(), 1);
        assert_eq!(kernels[0]["iterations"], 1);
        assert_eq!(kernels[0]["busy_ns"], 40);
    }
}

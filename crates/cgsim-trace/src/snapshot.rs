//! Frozen view of one traced run: name tables, buffered records and the
//! metrics snapshot, ready for export.

use crate::event::{TraceEvent, TraceRecord};
use crate::metrics::MetricsSnapshot;

/// Registration-time facts about one channel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChannelInfo {
    /// Display name (graph connector name or `c{index}`).
    pub name: String,
    /// Buffer capacity in elements (0 when unknown).
    pub capacity: u64,
}

/// Everything a tracer captured, decoupled from the live run.
#[derive(Clone, Debug, Default)]
pub struct TraceSnapshot {
    /// Kernel names; index == [`crate::KernelRef`] value.
    pub kernels: Vec<String>,
    /// Channel info; index == [`crate::ChannelRef`] value.
    pub channels: Vec<ChannelInfo>,
    /// Buffered records, oldest first.
    pub records: Vec<TraceRecord>,
    /// Records the sink had to discard (ring buffer overflow).
    pub dropped: u64,
    /// All registered metrics.
    pub metrics: MetricsSnapshot,
}

impl TraceSnapshot {
    /// Display name for a kernel handle (`k{n}` fallback for handles that
    /// were never registered).
    pub fn kernel_name(&self, kernel: crate::KernelRef) -> String {
        self.kernels
            .get(kernel.0 as usize)
            .cloned()
            .unwrap_or_else(|| format!("k{}", kernel.0))
    }

    /// Display name for a channel handle.
    pub fn channel_name(&self, channel: crate::ChannelRef) -> String {
        self.channels
            .get(channel.0 as usize)
            .map(|c| c.name.clone())
            .unwrap_or_else(|| format!("c{}", channel.0))
    }

    /// Timestamp span covered by the buffered records: prefers explicit
    /// RunBegin/RunEnd markers, falls back to first/last record.
    pub fn span_ns(&self) -> (u64, u64) {
        let mut begin = None;
        let mut end = None;
        for r in &self.records {
            match r.event {
                TraceEvent::RunBegin => begin = Some(r.ts_ns),
                TraceEvent::RunEnd => end = Some(r.ts_ns),
                _ => {}
            }
        }
        let first = begin
            .or_else(|| self.records.first().map(|r| r.ts_ns))
            .unwrap_or(0);
        let last = end
            .or_else(|| self.records.last().map(|r| r.ts_ns))
            .unwrap_or(first);
        (first, last.max(first))
    }

    /// Completed-iteration count per registered kernel (indexed like
    /// `kernels`). Kernels that never emitted `IterationEnd` report 0.
    pub fn iteration_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.kernels.len()];
        for r in &self.records {
            if let TraceEvent::IterationEnd { kernel, .. } = r.event {
                if let Some(slot) = counts.get_mut(kernel.0 as usize) {
                    *slot += 1;
                }
            }
        }
        counts
    }
}

//! Trace sinks: where emitted [`TraceRecord`]s go.
//!
//! The default collector is a bounded ring buffer with drop-oldest
//! semantics, so a long-running graph cannot exhaust memory no matter how
//! chatty its channels are; the number of dropped records is counted and
//! surfaced in the snapshot.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::event::TraceRecord;

/// Destination for trace records. Implementations must be cheap and
/// thread-safe: `record` is called from hot scheduler/channel paths.
pub trait TraceSink: Send + Sync {
    /// Accept one record.
    fn record(&self, record: TraceRecord);
    /// Remove and return all buffered records, oldest first.
    fn drain(&self) -> Vec<TraceRecord>;
    /// Number of records discarded because the sink was full.
    fn dropped(&self) -> u64;
}

/// Bounded in-memory collector. When full, the **oldest** record is evicted
/// to make room — recent history wins, matching what you want when a run
/// misbehaves at the end.
pub struct RingBufferSink {
    buf: Mutex<VecDeque<TraceRecord>>,
    capacity: usize,
    dropped: AtomicU64,
}

impl RingBufferSink {
    /// Create a sink holding at most `capacity` records. A capacity of zero
    /// drops everything (but still counts).
    pub fn new(capacity: usize) -> Self {
        RingBufferSink {
            buf: Mutex::new(VecDeque::with_capacity(capacity.min(4096))),
            capacity,
            dropped: AtomicU64::new(0),
        }
    }

    /// Number of records currently buffered.
    pub fn len(&self) -> usize {
        self.buf.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when no records are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl TraceSink for RingBufferSink {
    fn record(&self, record: TraceRecord) {
        let mut buf = self.buf.lock().unwrap_or_else(|e| e.into_inner());
        if self.capacity == 0 {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if buf.len() == self.capacity {
            buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back(record);
    }

    fn drain(&self) -> Vec<TraceRecord> {
        let mut buf = self.buf.lock().unwrap_or_else(|e| e.into_inner());
        buf.drain(..).collect()
    }

    fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// Sink that discards everything. Useful as an explicit "metrics only"
/// configuration.
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&self, _record: TraceRecord) {}
    fn drain(&self) -> Vec<TraceRecord> {
        Vec::new()
    }
    fn dropped(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;

    fn rec(ts: u64) -> TraceRecord {
        TraceRecord {
            ts_ns: ts,
            event: TraceEvent::RunBegin,
        }
    }

    #[test]
    fn ring_buffer_is_bounded_and_drops_oldest() {
        let sink = RingBufferSink::new(3);
        for ts in 0..5 {
            sink.record(rec(ts));
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 2);
        let records: Vec<u64> = sink.drain().iter().map(|r| r.ts_ns).collect();
        assert_eq!(records, vec![2, 3, 4]);
        assert!(sink.is_empty());
        // dropped count survives a drain
        assert_eq!(sink.dropped(), 2);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let sink = RingBufferSink::new(0);
        sink.record(rec(1));
        sink.record(rec(2));
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 2);
    }

    #[test]
    fn drain_preserves_fifo_order() {
        let sink = RingBufferSink::new(16);
        for ts in 0..10 {
            sink.record(rec(ts));
        }
        let order: Vec<u64> = sink.drain().iter().map(|r| r.ts_ns).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_recording_is_safe_and_lossless_under_capacity() {
        use std::sync::Arc;
        let sink = Arc::new(RingBufferSink::new(10_000));
        let mut handles = Vec::new();
        for t in 0..8 {
            let sink = Arc::clone(&sink);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000 {
                    sink.record(rec(t * 1000 + i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sink.len(), 8000);
        assert_eq!(sink.dropped(), 0);
    }
}

//! The event vocabulary shared by the cooperative runtime and the
//! discrete-event simulator.
//!
//! Both execution engines report progress through the same set of typed
//! events, so one set of exporters (Chrome trace, summary table, JSON
//! snapshot) serves both. Events carry stable integer handles
//! ([`KernelRef`], [`ChannelRef`]) assigned at registration time; the
//! [`crate::TraceSnapshot`] maps them back to names.

/// Stable handle for a registered kernel (or source/sink coroutine, or
/// simulator node). Index into [`crate::TraceSnapshot::kernels`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct KernelRef(pub u32);

/// Stable handle for a registered channel/FIFO. Index into
/// [`crate::TraceSnapshot::channels`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ChannelRef(pub u32);

/// Which side of a channel an event refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockSide {
    /// A producer (full buffer).
    Write,
    /// A consumer (empty buffer).
    Read,
}

/// One simulation/runtime occurrence.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceEvent {
    /// The scheduler started polling a kernel coroutine.
    PollBegin { kernel: KernelRef },
    /// The poll returned; `pending` is true if the kernel suspended.
    PollEnd { kernel: KernelRef, pending: bool },
    /// A suspended kernel was made runnable again (waker fired).
    SchedulerWake { kernel: KernelRef },
    /// An element was accepted by a channel; `occupancy` is the buffer
    /// fill after the push.
    ChannelPush { channel: ChannelRef, occupancy: u64 },
    /// An element was delivered to a consumer; `occupancy` is the buffer
    /// fill after the pop.
    ChannelPop { channel: ChannelRef, occupancy: u64 },
    /// A kernel suspended on a channel (full for writers, empty for
    /// readers).
    ChannelBlock {
        channel: ChannelRef,
        side: BlockSide,
    },
    /// Blocked kernels on one side of a channel were released.
    ChannelUnblock {
        channel: ChannelRef,
        side: BlockSide,
    },
    /// A source coroutine finished injecting its stream (`elements` total).
    SourceIo { kernel: KernelRef, elements: u64 },
    /// A sink coroutine observed end-of-stream (`elements` collected).
    SinkIo { kernel: KernelRef, elements: u64 },
    /// A simulated kernel iteration completed. The record timestamp is the
    /// completion time; `start_ns` is when the iteration began.
    IterationEnd {
        kernel: KernelRef,
        iteration: u64,
        start_ns: u64,
    },
    /// A simulator node failed to start an iteration (empty input or full
    /// output FIFO).
    Stall { kernel: KernelRef },
    /// A run/simulation began.
    RunBegin,
    /// A run/simulation ended.
    RunEnd,
}

impl TraceEvent {
    /// The kernel this event is attributed to, if any.
    pub fn kernel(&self) -> Option<KernelRef> {
        match *self {
            TraceEvent::PollBegin { kernel }
            | TraceEvent::PollEnd { kernel, .. }
            | TraceEvent::SchedulerWake { kernel }
            | TraceEvent::SourceIo { kernel, .. }
            | TraceEvent::SinkIo { kernel, .. }
            | TraceEvent::IterationEnd { kernel, .. }
            | TraceEvent::Stall { kernel } => Some(kernel),
            _ => None,
        }
    }

    /// Short machine-readable name of the event kind.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::PollBegin { .. } => "poll_begin",
            TraceEvent::PollEnd { .. } => "poll_end",
            TraceEvent::SchedulerWake { .. } => "scheduler_wake",
            TraceEvent::ChannelPush { .. } => "channel_push",
            TraceEvent::ChannelPop { .. } => "channel_pop",
            TraceEvent::ChannelBlock { .. } => "channel_block",
            TraceEvent::ChannelUnblock { .. } => "channel_unblock",
            TraceEvent::SourceIo { .. } => "source_io",
            TraceEvent::SinkIo { .. } => "sink_io",
            TraceEvent::IterationEnd { .. } => "iteration_end",
            TraceEvent::Stall { .. } => "stall",
            TraceEvent::RunBegin => "run_begin",
            TraceEvent::RunEnd => "run_end",
        }
    }
}

/// A timestamped event. Timestamps are nanoseconds on a monotonic axis —
/// wall-clock since tracer creation for the runtime, simulated time for the
/// DES engine; the two are never mixed within one tracer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceRecord {
    /// Nanoseconds since the tracer's epoch.
    pub ts_ns: u64,
    /// What happened.
    pub event: TraceEvent,
}

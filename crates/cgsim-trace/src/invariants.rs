//! Structural invariant checks over a [`TraceSnapshot`].
//!
//! A correct run — cooperative runtime or simulator — leaves a trace that
//! satisfies a handful of structural properties regardless of schedule:
//! polls nest properly on the single scheduler thread, channel occupancy
//! never exceeds the registered capacity, and nothing executes outside the
//! `RunBegin`/`RunEnd` span (no kernel runs after quiescence). The
//! conformance harness (`cgsim-check`) runs these checks on every traced
//! execution; they are also usable standalone on any snapshot.
//!
//! Checks that need graph knowledge (e.g. push/pop conservation per
//! connector, which depends on the consumer count) live with the callers
//! that hold a graph; this module is graph-agnostic by design.

use crate::event::TraceEvent;
use crate::snapshot::TraceSnapshot;

/// Check all structural invariants; returns one human-readable line per
/// violation (empty = clean). An empty snapshot (untraced run) is clean by
/// definition; a snapshot with dropped records skips the whole-history
/// checks that require completeness and keeps the per-record ones.
pub fn check(snap: &TraceSnapshot) -> Vec<String> {
    let mut violations = Vec::new();
    let complete = snap.dropped == 0;

    // --- Per-record checks (valid even on a truncated ring) ---
    for r in &snap.records {
        match r.event {
            TraceEvent::ChannelPush { channel, occupancy } => {
                if let Some(info) = snap.channels.get(channel.0 as usize) {
                    if info.capacity > 0 && occupancy > info.capacity {
                        violations.push(format!(
                            "channel {}: occupancy {} exceeds capacity {} after push",
                            info.name, occupancy, info.capacity
                        ));
                    }
                }
            }
            TraceEvent::IterationEnd {
                kernel, start_ns, ..
            } if start_ns > r.ts_ns => {
                violations.push(format!(
                    "kernel {}: iteration ends at {} before it starts at {}",
                    snap.kernel_name(kernel),
                    r.ts_ns,
                    start_ns
                ));
            }
            _ => {}
        }
    }

    if !complete || snap.records.is_empty() {
        return violations;
    }

    // --- Whole-history checks (need every record) ---

    // Poll bracketing: the cooperative scheduler is single-threaded, so at
    // most one poll is open at a time and each PollEnd must close the poll
    // that is open.
    let mut open_poll = None;
    let mut run_open = false;
    let mut run_ended = false;
    for r in &snap.records {
        match r.event {
            TraceEvent::PollBegin { kernel } => {
                if let Some(prev) = open_poll {
                    violations.push(format!(
                        "poll of {} begins inside open poll of {}",
                        snap.kernel_name(kernel),
                        snap.kernel_name(prev)
                    ));
                }
                open_poll = Some(kernel);
            }
            TraceEvent::PollEnd { kernel, .. } => match open_poll.take() {
                Some(open) if open == kernel => {}
                Some(open) => violations.push(format!(
                    "poll of {} ends while poll of {} is open",
                    snap.kernel_name(kernel),
                    snap.kernel_name(open)
                )),
                None => violations.push(format!(
                    "poll of {} ends without a matching begin",
                    snap.kernel_name(kernel)
                )),
            },
            TraceEvent::RunBegin => run_open = true,
            TraceEvent::RunEnd => {
                run_open = false;
                run_ended = true;
            }
            // Execution events must not appear outside the run span — after
            // RunEnd would mean a kernel ran past quiescence.
            TraceEvent::ChannelPush { .. }
            | TraceEvent::ChannelPop { .. }
            | TraceEvent::SourceIo { .. }
            | TraceEvent::SinkIo { .. } => {
                if run_ended && !run_open {
                    violations.push(format!(
                        "{} event after run end (kernel ran past quiescence)",
                        r.event.kind()
                    ));
                } else if !run_open {
                    violations.push(format!("{} event before run begin", r.event.kind()));
                }
            }
            _ => {}
        }
    }
    if let Some(kernel) = open_poll {
        violations.push(format!("poll of {} never ended", snap.kernel_name(kernel)));
    }

    // Timestamps on the shared axis never go backwards.
    for pair in snap.records.windows(2) {
        if pair[1].ts_ns < pair[0].ts_ns {
            violations.push(format!(
                "timestamps regress: {} then {}",
                pair[0].ts_ns, pair[1].ts_ns
            ));
            break;
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ChannelRef, KernelRef, TraceRecord};
    use crate::snapshot::ChannelInfo;

    fn snap_with(records: Vec<TraceEvent>) -> TraceSnapshot {
        TraceSnapshot {
            kernels: vec!["k0".into(), "k1".into()],
            channels: vec![ChannelInfo {
                name: "c0".into(),
                capacity: 2,
            }],
            records: records
                .into_iter()
                .enumerate()
                .map(|(i, event)| TraceRecord {
                    ts_ns: i as u64,
                    event,
                })
                .collect(),
            dropped: 0,
            metrics: Default::default(),
        }
    }

    #[test]
    fn clean_run_has_no_violations() {
        let k = KernelRef(0);
        let c = ChannelRef(0);
        let snap = snap_with(vec![
            TraceEvent::RunBegin,
            TraceEvent::PollBegin { kernel: k },
            TraceEvent::ChannelPush {
                channel: c,
                occupancy: 1,
            },
            TraceEvent::PollEnd {
                kernel: k,
                pending: false,
            },
            TraceEvent::RunEnd,
        ]);
        assert_eq!(check(&snap), Vec::<String>::new());
    }

    #[test]
    fn empty_snapshot_is_clean() {
        assert!(check(&TraceSnapshot::default()).is_empty());
    }

    #[test]
    fn overfull_channel_is_flagged() {
        let snap = snap_with(vec![
            TraceEvent::RunBegin,
            TraceEvent::ChannelPush {
                channel: ChannelRef(0),
                occupancy: 3,
            },
            TraceEvent::RunEnd,
        ]);
        let v = check(&snap);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("exceeds capacity"), "{v:?}");
    }

    #[test]
    fn activity_after_run_end_is_flagged() {
        let snap = snap_with(vec![
            TraceEvent::RunBegin,
            TraceEvent::RunEnd,
            TraceEvent::ChannelPop {
                channel: ChannelRef(0),
                occupancy: 0,
            },
        ]);
        let v = check(&snap);
        assert!(v.iter().any(|m| m.contains("after run end")), "{v:?}");
    }

    #[test]
    fn nested_polls_are_flagged() {
        let snap = snap_with(vec![
            TraceEvent::RunBegin,
            TraceEvent::PollBegin {
                kernel: KernelRef(0),
            },
            TraceEvent::PollBegin {
                kernel: KernelRef(1),
            },
            TraceEvent::RunEnd,
        ]);
        let v = check(&snap);
        assert!(v.iter().any(|m| m.contains("inside open poll")), "{v:?}");
    }

    #[test]
    fn truncated_ring_skips_history_checks() {
        let mut snap = snap_with(vec![TraceEvent::PollEnd {
            kernel: KernelRef(0),
            pending: false,
        }]);
        snap.dropped = 10;
        // An unmatched PollEnd is expected when the begin fell off the ring.
        assert!(check(&snap).is_empty());
    }
}

//! A small metrics registry: named counters, gauges and histograms with
//! optional per-kernel/per-channel labels.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap clones of
//! shared atomics. A default-constructed handle is a no-op, which lets
//! instrumented code hold handles unconditionally and skip branching on
//! whether tracing is active.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Identity of one metric instrument: name plus sorted label pairs.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    pub name: String,
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }

    /// `name{k=v,...}` rendering used by the summary/JSON exporters.
    pub fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let labels: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        format!("{}{{{}}}", self.name, labels.join(","))
    }
}

/// Monotonically increasing count. Default handle is a no-op.
#[derive(Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, delta: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(delta, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Point-in-time signed value. Default handle is a no-op.
#[derive(Clone, Default)]
pub struct Gauge(Option<Arc<AtomicI64>>);

impl Gauge {
    pub fn set(&self, value: i64) {
        if let Some(cell) = &self.0 {
            cell.store(value, Ordering::Relaxed);
        }
    }

    pub fn add(&self, delta: i64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(delta, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> i64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

const HISTOGRAM_BUCKETS: usize = 64;

struct HistogramCore {
    /// Power-of-two buckets: bucket i counts values v with
    /// `v.ilog2() == i` (bucket 0 also takes v == 0).
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// Log2-bucketed histogram of u64 observations. Default handle is a no-op.
#[derive(Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl Histogram {
    pub fn observe(&self, value: u64) {
        let Some(core) = &self.0 else { return };
        let bucket = if value == 0 {
            0
        } else {
            value.ilog2() as usize
        };
        core.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(value, Ordering::Relaxed);
        core.max.fetch_max(value, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.count.load(Ordering::Relaxed))
    }

    pub fn sum(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.sum.load(Ordering::Relaxed))
    }

    pub fn max(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.max.load(Ordering::Relaxed))
    }

    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self.0.as_ref().map_or_else(Vec::new, |core| {
            core.buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect()
        });
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            buckets,
        }
    }
}

/// Frozen view of one histogram.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    /// Log2 bucket counts; trailing zero buckets may be truncated.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) of the observed values by
    /// linear interpolation inside the log2 bucket holding the target rank.
    ///
    /// Bucket `i` spans `[2^i, 2^(i+1) - 1]` (bucket 0 also holds zero), so
    /// the estimate is exact for bucket 0 endpoints and within one octave
    /// otherwise; the top estimate is clamped to the recorded `max`. Returns
    /// `0.0` for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let below = cumulative as f64;
            cumulative += n;
            if cumulative as f64 >= target {
                let lo = if i == 0 { 0u64 } else { 1u64 << i };
                let hi_raw = ((1u128 << (i + 1)) - 1).min(u64::MAX as u128) as u64;
                let hi = hi_raw.min(self.max).max(lo);
                let frac = ((target - below) / n as f64).clamp(0.0, 1.0);
                return lo as f64 + frac * (hi - lo) as f64;
            }
        }
        self.max as f64
    }

    /// Median estimate (see [`HistogramSnapshot::quantile`]).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate (see [`HistogramSnapshot::quantile`]).
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate (see [`HistogramSnapshot::quantile`]).
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// Registry of instruments, deduplicated by `(name, labels)`: asking twice
/// for the same key returns handles to the same underlying cell.
#[derive(Default)]
pub struct MetricsRegistry {
    instruments: Mutex<BTreeMap<MetricKey, Instrument>>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = MetricKey::new(name, labels);
        let mut map = self.instruments.lock().unwrap_or_else(|e| e.into_inner());
        match map
            .entry(key)
            .or_insert_with(|| Instrument::Counter(Counter(Some(Arc::new(AtomicU64::new(0))))))
        {
            Instrument::Counter(c) => c.clone(),
            _ => Counter::default(),
        }
    }

    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = MetricKey::new(name, labels);
        let mut map = self.instruments.lock().unwrap_or_else(|e| e.into_inner());
        match map
            .entry(key)
            .or_insert_with(|| Instrument::Gauge(Gauge(Some(Arc::new(AtomicI64::new(0))))))
        {
            Instrument::Gauge(g) => g.clone(),
            _ => Gauge::default(),
        }
    }

    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let key = MetricKey::new(name, labels);
        let mut map = self.instruments.lock().unwrap_or_else(|e| e.into_inner());
        match map.entry(key).or_insert_with(|| {
            Instrument::Histogram(Histogram(Some(Arc::new(HistogramCore {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
            }))))
        }) {
            Instrument::Histogram(h) => h.clone(),
            _ => Histogram::default(),
        }
    }

    /// Freeze every registered instrument into a sorted snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.instruments.lock().unwrap_or_else(|e| e.into_inner());
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for (key, instrument) in map.iter() {
            match instrument {
                Instrument::Counter(c) => counters.push((key.clone(), c.get())),
                Instrument::Gauge(g) => gauges.push((key.clone(), g.get())),
                Instrument::Histogram(h) => {
                    let mut snap = h.snapshot();
                    while snap.buckets.last() == Some(&0) {
                        snap.buckets.pop();
                    }
                    histograms.push((key.clone(), snap));
                }
            }
        }
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// Frozen, sorted view of the registry. `(name, labels)` keys are unique.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    pub counters: Vec<(MetricKey, u64)>,
    pub gauges: Vec<(MetricKey, i64)>,
    pub histograms: Vec<(MetricKey, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Value of a counter by rendered key (e.g. `pushes{channel=c0}`),
    /// mostly for tests.
    pub fn counter_value(&self, rendered: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k.render() == rendered)
            .map(|(_, v)| *v)
    }

    /// Value of a gauge by rendered key (e.g. `channel_occupancy{channel=c0}`).
    pub fn gauge_value(&self, rendered: &str) -> Option<i64> {
        self.gauges
            .iter()
            .find(|(k, _)| k.render() == rendered)
            .map(|(_, v)| *v)
    }

    /// Histogram snapshot by rendered key (e.g. `poll_ns{sample_every=64}`).
    pub fn histogram_snapshot(&self, rendered: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(k, _)| k.render() == rendered)
            .map(|(_, h)| h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_dedup_by_name_and_labels() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("pushes", &[("channel", "c0")]);
        let b = reg.counter("pushes", &[("channel", "c0")]);
        let c = reg.counter("pushes", &[("channel", "c1")]);
        a.add(3);
        b.add(4);
        c.inc();
        assert_eq!(a.get(), 7);
        assert_eq!(c.get(), 1);
        let snap = reg.snapshot();
        assert_eq!(snap.counter_value("pushes{channel=c0}"), Some(7));
        assert_eq!(snap.counter_value("pushes{channel=c1}"), Some(1));
    }

    #[test]
    fn default_handles_are_noops() {
        let counter = Counter::default();
        counter.inc();
        assert_eq!(counter.get(), 0);
        let gauge = Gauge::default();
        gauge.set(42);
        assert_eq!(gauge.get(), 0);
        let hist = Histogram::default();
        hist.observe(9);
        assert_eq!(hist.count(), 0);
    }

    #[test]
    fn histogram_tracks_count_sum_max_and_buckets() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("poll_ns", &[]);
        for v in [0, 1, 2, 3, 1024] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1030);
        assert_eq!(h.max(), 1024);
        assert!((h.mean() - 206.0).abs() < 1e-9);
        let snap = reg.snapshot();
        let hist = snap.histogram_snapshot("poll_ns").unwrap();
        // 0 and 1 land in bucket 0; 2,3 in bucket 1; 1024 in bucket 10.
        assert_eq!(hist.buckets[0], 2);
        assert_eq!(hist.buckets[1], 2);
        assert_eq!(hist.buckets[10], 1);
        assert_eq!(hist.buckets.len(), 11);
    }

    #[test]
    fn keyed_lookups_find_gauges_and_histograms() {
        let reg = MetricsRegistry::new();
        reg.gauge("occupancy", &[("channel", "c0")]).set(3);
        reg.histogram("lat", &[]).observe(7);
        let snap = reg.snapshot();
        assert_eq!(snap.gauge_value("occupancy{channel=c0}"), Some(3));
        assert_eq!(snap.gauge_value("occupancy{channel=c9}"), None);
        assert_eq!(snap.histogram_snapshot("lat").unwrap().count, 1);
        assert!(snap.histogram_snapshot("nope").is_none());
    }

    #[test]
    fn quantiles_interpolate_within_log2_buckets() {
        let empty = HistogramSnapshot {
            count: 0,
            sum: 0,
            max: 0,
            buckets: vec![],
        };
        assert_eq!(empty.quantile(0.5), 0.0);

        // All mass in bucket 0 ({0, 1}): endpoints are exact.
        let h = HistogramSnapshot {
            count: 4,
            sum: 2,
            max: 1,
            buckets: vec![4],
        };
        assert!(h.quantile(0.0) <= h.quantile(1.0));
        assert_eq!(h.quantile(1.0), 1.0);

        // 100 values of 1000 (bucket 9: [512, 1023]): every quantile lands
        // inside that octave and p99 never exceeds the recorded max.
        let mut buckets = vec![0u64; 10];
        buckets[9] = 100;
        let h = HistogramSnapshot {
            count: 100,
            sum: 100_000,
            max: 1000,
            buckets,
        };
        for q in [0.5, 0.9, 0.99] {
            let v = h.quantile(q);
            assert!((512.0..=1000.0).contains(&v), "q{q} = {v}");
        }
        assert!(h.p50() <= h.p90() && h.p90() <= h.p99());
        assert!(h.p99() <= h.max as f64);
    }

    #[test]
    fn label_order_does_not_matter() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("m", &[("a", "1"), ("b", "2")]);
        let b = reg.counter("m", &[("b", "2"), ("a", "1")]);
        a.inc();
        assert_eq!(b.get(), 1);
    }
}

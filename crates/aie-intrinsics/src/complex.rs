//! Complex fixed-point and floating-point vector support.
//!
//! AIE1's DSP identity is built around complex arithmetic: `cint16` /
//! `cfloat` vectors with complex MACs (including conjugate variants) are
//! the workhorses of FIR/FFT/beamforming kernels. AMD's emulation headers
//! cover these types; this module is the reproduction's equivalent —
//! functionally exact wide-accumulator complex arithmetic, instrumented for
//! the cycle model like the rest of the crate.

use crate::counter::{record, OpKind};
use crate::vector::Vector;

/// A complex number with `i16` components (`cint16`).
///
/// `repr(C)` pins the in-memory layout to the hardware's interleaved
/// `re, im` pair so the SIMD kernels can operate on flattened lanes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
#[repr(C)]
pub struct CInt16 {
    /// Real part.
    pub re: i16,
    /// Imaginary part.
    pub im: i16,
}

impl CInt16 {
    /// Construct from parts.
    pub const fn new(re: i16, im: i16) -> Self {
        CInt16 { re, im }
    }

    /// Complex conjugate.
    pub const fn conj(self) -> Self {
        CInt16 {
            re: self.re,
            im: self.im.wrapping_neg(),
        }
    }
}

/// A complex number with wide (`i64`) components — one accumulator lane of
/// the AIE `cacc48` register. `repr(C)` pins the interleaved `re, im`
/// layout for the SIMD kernels.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[repr(C)]
pub struct CAcc {
    /// Real accumulator.
    pub re: i64,
    /// Imaginary accumulator.
    pub im: i64,
}

/// An `N`-lane complex 48-bit accumulator (AIE `cacc48`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CAccI48<const N: usize> {
    lanes: [CAcc; N],
}

impl<const N: usize> Default for CAccI48<N> {
    fn default() -> Self {
        Self::zero()
    }
}

impl<const N: usize> CAccI48<N> {
    /// The zero accumulator.
    pub const fn zero() -> Self {
        CAccI48 {
            lanes: [CAcc { re: 0, im: 0 }; N],
        }
    }

    /// Raw lanes.
    pub fn to_array(self) -> [CAcc; N] {
        self.lanes
    }

    /// `acc += a * b` lane-wise complex multiply-accumulate (AIE `cmac`):
    /// `(ar·br − ai·bi) + j(ar·bi + ai·br)` in full precision.
    pub fn cmac(mut self, a: Vector<CInt16, N>, b: Vector<CInt16, N>) -> Self {
        record(OpKind::VMac);
        crate::simd::cmac_c16(
            flat_acc(&mut self.lanes),
            flat_c16(a.lanes_ref()),
            flat_c16(b.lanes_ref()),
        );
        self
    }

    /// `acc += a * conj(b)` (AIE `cmac_conf` / conjugate MAC) — the
    /// correlation primitive.
    pub fn cmac_conj(mut self, a: Vector<CInt16, N>, b: Vector<CInt16, N>) -> Self {
        record(OpKind::VMac);
        crate::simd::cmac_conj_c16(
            flat_acc(&mut self.lanes),
            flat_c16(a.lanes_ref()),
            flat_c16(b.lanes_ref()),
        );
        self
    }

    /// Shift-round-saturate both components back to `cint16` lanes.
    pub fn srs(self, shift: u32) -> Vector<CInt16, N> {
        record(OpKind::VSrs);
        let mut out = [CInt16::default(); N];
        // Both components go through the same per-lane srs, so the flat
        // interleaved view reuses the real-valued readout kernel.
        let acc = self.lanes;
        crate::simd::srs_i48_to_i16(flat_acc_ref(&acc), shift, flat_c16_mut(&mut out));
        Vector::from_array(out)
    }
}

/// Lane-wise complex magnitude-squared into wide lanes (|z|² = re² + im²) —
/// the power-detector primitive; counted as one MAC issue.
pub fn cmag_sq<const N: usize>(v: &Vector<CInt16, N>) -> [i64; N] {
    record(OpKind::VMac);
    let mut out = [0i64; N];
    crate::simd::cmag_sq_c16(flat_c16(v.lanes_ref()), &mut out);
    out
}

/// View complex `i16` lanes as interleaved scalar lanes (`repr(C)` makes
/// this a pure reinterpretation).
fn flat_c16<const N: usize>(lanes: &[CInt16; N]) -> &[i16] {
    // SAFETY: CInt16 is repr(C) { re: i16, im: i16 } — no padding; N pairs
    // occupy exactly 2N contiguous i16s.
    unsafe { std::slice::from_raw_parts(lanes.as_ptr() as *const i16, 2 * N) }
}

/// Mutable variant of [`flat_c16`].
fn flat_c16_mut<const N: usize>(lanes: &mut [CInt16; N]) -> &mut [i16] {
    // SAFETY: as in `flat_c16`.
    unsafe { std::slice::from_raw_parts_mut(lanes.as_mut_ptr() as *mut i16, 2 * N) }
}

/// View complex accumulator lanes as interleaved `i64` lanes.
fn flat_acc_ref<const N: usize>(lanes: &[CAcc; N]) -> &[i64] {
    // SAFETY: CAcc is repr(C) { re: i64, im: i64 } — no padding.
    unsafe { std::slice::from_raw_parts(lanes.as_ptr() as *const i64, 2 * N) }
}

/// Mutable variant of [`flat_acc_ref`].
fn flat_acc<const N: usize>(lanes: &mut [CAcc; N]) -> &mut [i64] {
    // SAFETY: as in `flat_acc_ref`.
    unsafe { std::slice::from_raw_parts_mut(lanes.as_mut_ptr() as *mut i64, 2 * N) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cv<const N: usize>(vals: [(i16, i16); N]) -> Vector<CInt16, N> {
        Vector::from_array(vals.map(|(re, im)| CInt16::new(re, im)))
    }

    #[test]
    fn cmac_multiplies_complex() {
        // (1+2j)(3+4j) = 3+4j+6j+8j² = -5 + 10j
        let a = cv([(1, 2); 4]);
        let b = cv([(3, 4); 4]);
        let acc = CAccI48::zero().cmac(a, b);
        for lane in acc.to_array() {
            assert_eq!((lane.re, lane.im), (-5, 10));
        }
    }

    #[test]
    fn cmac_conj_correlates() {
        // a·conj(a) = |a|² purely real.
        let a = cv([(300, -400); 8]);
        let acc = CAccI48::zero().cmac_conj(a, a);
        for lane in acc.to_array() {
            assert_eq!(lane.re, 300 * 300 + 400 * 400);
            assert_eq!(lane.im, 0);
        }
    }

    #[test]
    fn srs_rescales_both_components() {
        let a = cv([(100, -100); 4]);
        let b = cv([(1 << 8, 0); 4]); // ×256 real scale
        let out = CAccI48::zero().cmac(a, b).srs(8);
        for i in 0..4 {
            assert_eq!((out[i].re, out[i].im), (100, -100));
        }
    }

    #[test]
    fn magnitude_squared() {
        let v = cv([(3, 4), (0, 0), (-5, 12), (1, -1)]);
        assert_eq!(cmag_sq(&v), [25, 0, 169, 2]);
    }

    #[test]
    fn conj_negates_imaginary() {
        assert_eq!(CInt16::new(7, -9).conj(), CInt16::new(7, 9));
        // Wrapping at the i16 boundary.
        assert_eq!(CInt16::new(0, i16::MIN).conj().im, i16::MIN);
    }

    proptest! {
        /// cmac matches exact complex arithmetic over random inputs.
        #[test]
        fn cmac_matches_reference(
            ar in any::<i16>(), ai in any::<i16>(),
            br in any::<i16>(), bi in any::<i16>(),
        ) {
            let a = cv([(ar, ai); 2]);
            let b = cv([(br, bi); 2]);
            let acc = CAccI48::zero().cmac(a, b);
            let expect_re = (ar as i64) * (br as i64) - (ai as i64) * (bi as i64);
            let expect_im = (ar as i64) * (bi as i64) + (ai as i64) * (br as i64);
            prop_assert_eq!(acc.to_array()[0], CAcc { re: expect_re, im: expect_im });
        }

        /// Conjugate MAC of z with itself is |z|² (real, non-negative).
        #[test]
        fn self_correlation_is_power(re in any::<i16>(), im in any::<i16>()) {
            let z = cv([(re, im); 2]);
            let acc = CAccI48::zero().cmac_conj(z, z);
            let lane = acc.to_array()[0];
            prop_assert!(lane.re >= 0);
            prop_assert_eq!(lane.im, 0);
            prop_assert_eq!(lane.re, cmag_sq(&z)[0]);
        }
    }
}

//! Complex fixed-point and floating-point vector support.
//!
//! AIE1's DSP identity is built around complex arithmetic: `cint16` /
//! `cfloat` vectors with complex MACs (including conjugate variants) are
//! the workhorses of FIR/FFT/beamforming kernels. AMD's emulation headers
//! cover these types; this module is the reproduction's equivalent —
//! functionally exact wide-accumulator complex arithmetic, instrumented for
//! the cycle model like the rest of the crate.

use crate::counter::{record, OpKind};
use crate::vector::Vector;

/// A complex number with `i16` components (`cint16`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct CInt16 {
    /// Real part.
    pub re: i16,
    /// Imaginary part.
    pub im: i16,
}

impl CInt16 {
    /// Construct from parts.
    pub const fn new(re: i16, im: i16) -> Self {
        CInt16 { re, im }
    }

    /// Complex conjugate.
    pub const fn conj(self) -> Self {
        CInt16 {
            re: self.re,
            im: self.im.wrapping_neg(),
        }
    }
}

/// A complex number with wide (`i64`) components — one accumulator lane of
/// the AIE `cacc48` register.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CAcc {
    /// Real accumulator.
    pub re: i64,
    /// Imaginary accumulator.
    pub im: i64,
}

/// An `N`-lane complex 48-bit accumulator (AIE `cacc48`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CAccI48<const N: usize> {
    lanes: [CAcc; N],
}

impl<const N: usize> Default for CAccI48<N> {
    fn default() -> Self {
        Self::zero()
    }
}

impl<const N: usize> CAccI48<N> {
    /// The zero accumulator.
    pub const fn zero() -> Self {
        CAccI48 {
            lanes: [CAcc { re: 0, im: 0 }; N],
        }
    }

    /// Raw lanes.
    pub fn to_array(self) -> [CAcc; N] {
        self.lanes
    }

    /// `acc += a * b` lane-wise complex multiply-accumulate (AIE `cmac`):
    /// `(ar·br − ai·bi) + j(ar·bi + ai·br)` in full precision.
    pub fn cmac(mut self, a: Vector<CInt16, N>, b: Vector<CInt16, N>) -> Self {
        record(OpKind::VMac);
        for i in 0..N {
            let (x, y) = (a[i], b[i]);
            self.lanes[i].re += (x.re as i64) * (y.re as i64) - (x.im as i64) * (y.im as i64);
            self.lanes[i].im += (x.re as i64) * (y.im as i64) + (x.im as i64) * (y.re as i64);
        }
        self
    }

    /// `acc += a * conj(b)` (AIE `cmac_conf` / conjugate MAC) — the
    /// correlation primitive.
    pub fn cmac_conj(mut self, a: Vector<CInt16, N>, b: Vector<CInt16, N>) -> Self {
        record(OpKind::VMac);
        for i in 0..N {
            let (x, y) = (a[i], b[i]);
            self.lanes[i].re += (x.re as i64) * (y.re as i64) + (x.im as i64) * (y.im as i64);
            self.lanes[i].im += (x.im as i64) * (y.re as i64) - (x.re as i64) * (y.im as i64);
        }
        self
    }

    /// Shift-round-saturate both components back to `cint16` lanes.
    pub fn srs(self, shift: u32) -> Vector<CInt16, N> {
        record(OpKind::VSrs);
        let mut out = [CInt16::default(); N];
        for i in 0..N {
            out[i] = CInt16 {
                re: crate::fixed::srs(self.lanes[i].re, shift),
                im: crate::fixed::srs(self.lanes[i].im, shift),
            };
        }
        Vector::from_array(out)
    }
}

/// Lane-wise complex magnitude-squared into wide lanes (|z|² = re² + im²) —
/// the power-detector primitive; counted as one MAC issue.
pub fn cmag_sq<const N: usize>(v: &Vector<CInt16, N>) -> [i64; N] {
    record(OpKind::VMac);
    std::array::from_fn(|i| {
        let z = v[i];
        (z.re as i64) * (z.re as i64) + (z.im as i64) * (z.im as i64)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cv<const N: usize>(vals: [(i16, i16); N]) -> Vector<CInt16, N> {
        Vector::from_array(vals.map(|(re, im)| CInt16::new(re, im)))
    }

    #[test]
    fn cmac_multiplies_complex() {
        // (1+2j)(3+4j) = 3+4j+6j+8j² = -5 + 10j
        let a = cv([(1, 2); 4]);
        let b = cv([(3, 4); 4]);
        let acc = CAccI48::zero().cmac(a, b);
        for lane in acc.to_array() {
            assert_eq!((lane.re, lane.im), (-5, 10));
        }
    }

    #[test]
    fn cmac_conj_correlates() {
        // a·conj(a) = |a|² purely real.
        let a = cv([(300, -400); 8]);
        let acc = CAccI48::zero().cmac_conj(a, a);
        for lane in acc.to_array() {
            assert_eq!(lane.re, 300 * 300 + 400 * 400);
            assert_eq!(lane.im, 0);
        }
    }

    #[test]
    fn srs_rescales_both_components() {
        let a = cv([(100, -100); 4]);
        let b = cv([(1 << 8, 0); 4]); // ×256 real scale
        let out = CAccI48::zero().cmac(a, b).srs(8);
        for i in 0..4 {
            assert_eq!((out[i].re, out[i].im), (100, -100));
        }
    }

    #[test]
    fn magnitude_squared() {
        let v = cv([(3, 4), (0, 0), (-5, 12), (1, -1)]);
        assert_eq!(cmag_sq(&v), [25, 0, 169, 2]);
    }

    #[test]
    fn conj_negates_imaginary() {
        assert_eq!(CInt16::new(7, -9).conj(), CInt16::new(7, 9));
        // Wrapping at the i16 boundary.
        assert_eq!(CInt16::new(0, i16::MIN).conj().im, i16::MIN);
    }

    proptest! {
        /// cmac matches exact complex arithmetic over random inputs.
        #[test]
        fn cmac_matches_reference(
            ar in any::<i16>(), ai in any::<i16>(),
            br in any::<i16>(), bi in any::<i16>(),
        ) {
            let a = cv([(ar, ai); 2]);
            let b = cv([(br, bi); 2]);
            let acc = CAccI48::zero().cmac(a, b);
            let expect_re = (ar as i64) * (br as i64) - (ai as i64) * (bi as i64);
            let expect_im = (ar as i64) * (bi as i64) + (ai as i64) * (br as i64);
            prop_assert_eq!(acc.to_array()[0], CAcc { re: expect_re, im: expect_im });
        }

        /// Conjugate MAC of z with itself is |z|² (real, non-negative).
        #[test]
        fn self_correlation_is_power(re in any::<i16>(), im in any::<i16>()) {
            let z = cv([(re, im); 2]);
            let acc = CAccI48::zero().cmac_conj(z, z);
            let lane = acc.to_array()[0];
            prop_assert!(lane.re >= 0);
            prop_assert_eq!(lane.im, 0);
            prop_assert_eq!(lane.re, cmag_sq(&z)[0]);
        }
    }
}

//! Portable per-lane reference kernels.
//!
//! These are the original scalar loops of the emulation layer, hoisted to
//! slice granularity. They are always compiled: they serve as the fallback
//! tier, handle the non-multiple-of-width tails of the SSE2/AVX2 kernels,
//! and act as the oracle the vector tiers are proptested against
//! (`tests/simd_equivalence.rs`).
//!
//! Semantics are part of the emulation contract and must not drift:
//! integers wrap in two's complement, floats follow IEEE with per-step
//! rounding (no FMA, no reassociation), min/max resolve ties and NaNs by
//! keeping the first operand, and accumulator readout goes through
//! [`crate::fixed`].

#![allow(clippy::needless_range_loop)]

macro_rules! wrapping_binops {
    ($($add:ident, $sub:ident => $t:ty;)*) => {
        $(
            /// Lane-wise wrapping add.
            #[inline]
            pub fn $add(a: &[$t], b: &[$t], out: &mut [$t]) {
                for i in 0..out.len() {
                    out[i] = a[i].wrapping_add(b[i]);
                }
            }

            /// Lane-wise wrapping subtract.
            #[inline]
            pub fn $sub(a: &[$t], b: &[$t], out: &mut [$t]) {
                for i in 0..out.len() {
                    out[i] = a[i].wrapping_sub(b[i]);
                }
            }
        )*
    };
}

wrapping_binops! {
    add_i16, sub_i16 => i16;
    add_i32, sub_i32 => i32;
}

macro_rules! minmax_ops {
    ($($min:ident, $max:ident => $t:ty;)*) => {
        $(
            /// Lane-wise minimum: `b` when `b < a`, else `a`.
            #[inline]
            pub fn $min(a: &[$t], b: &[$t], out: &mut [$t]) {
                for i in 0..out.len() {
                    out[i] = if b[i] < a[i] { b[i] } else { a[i] };
                }
            }

            /// Lane-wise maximum: `b` when `b > a`, else `a`.
            #[inline]
            pub fn $max(a: &[$t], b: &[$t], out: &mut [$t]) {
                for i in 0..out.len() {
                    out[i] = if b[i] > a[i] { b[i] } else { a[i] };
                }
            }
        )*
    };
}

minmax_ops! {
    min_i16, max_i16 => i16;
    min_i32, max_i32 => i32;
    min_f32, max_f32 => f32;
}

macro_rules! select_ops {
    ($($name:ident => $t:ty;)*) => {
        $(
            /// Lane-wise select: `mask ? a : b`.
            #[inline]
            pub fn $name(a: &[$t], b: &[$t], mask: &[bool], out: &mut [$t]) {
                for i in 0..out.len() {
                    out[i] = if mask[i] { a[i] } else { b[i] };
                }
            }
        )*
    };
}

select_ops! {
    select_i16 => i16;
    select_i32 => i32;
    select_f32 => f32;
}

/// Lane-wise IEEE add.
#[inline]
pub fn add_f32(a: &[f32], b: &[f32], out: &mut [f32]) {
    for i in 0..out.len() {
        out[i] = a[i] + b[i];
    }
}

/// Lane-wise IEEE subtract.
#[inline]
pub fn sub_f32(a: &[f32], b: &[f32], out: &mut [f32]) {
    for i in 0..out.len() {
        out[i] = a[i] - b[i];
    }
}

/// Lane-wise IEEE multiply.
#[inline]
pub fn mul_f32(a: &[f32], b: &[f32], out: &mut [f32]) {
    for i in 0..out.len() {
        out[i] = a[i] * b[i];
    }
}

/// Lane-wise IEEE negation.
#[inline]
pub fn neg_f32(a: &[f32], out: &mut [f32]) {
    for i in 0..out.len() {
        out[i] = -a[i];
    }
}

/// Gather permute: `out[i] = src[pattern[i]]`.
#[inline]
pub fn permute_f32(src: &[f32], pattern: &[usize], out: &mut [f32]) {
    for i in 0..out.len() {
        out[i] = src[pattern[i]];
    }
}

/// `acc[i] += a[i] as i64 * b[i] as i64`.
#[inline]
pub fn mac_i48(acc: &mut [i64], a: &[i16], b: &[i16]) {
    for i in 0..acc.len() {
        acc[i] += (a[i] as i64) * (b[i] as i64);
    }
}

/// `acc[i] -= a[i] as i64 * b[i] as i64`.
#[inline]
pub fn msc_i48(acc: &mut [i64], a: &[i16], b: &[i16]) {
    for i in 0..acc.len() {
        acc[i] -= (a[i] as i64) * (b[i] as i64);
    }
}

/// `acc[i] += data[i] as i64 * coeff as i64` (`data.len() >= acc.len()`).
#[inline]
pub fn mac_coeff_i48(acc: &mut [i64], data: &[i16], coeff: i16) {
    for i in 0..acc.len() {
        acc[i] += (data[i] as i64) * (coeff as i64);
    }
}

/// `acc[i] += other[i]`.
#[inline]
pub fn add_i64(acc: &mut [i64], other: &[i64]) {
    for i in 0..acc.len() {
        acc[i] += other[i];
    }
}

/// `acc[i] += a[i] * b[i]` (two IEEE roundings per lane).
#[inline]
pub fn fpmac_f32(acc: &mut [f32], a: &[f32], b: &[f32]) {
    for i in 0..acc.len() {
        acc[i] += a[i] * b[i];
    }
}

/// `acc[i] -= a[i] * b[i]` (two IEEE roundings per lane).
#[inline]
pub fn fpmsc_f32(acc: &mut [f32], a: &[f32], b: &[f32]) {
    for i in 0..acc.len() {
        acc[i] -= a[i] * b[i];
    }
}

/// `acc[i] += data[i] * coeff` (`data.len() >= acc.len()`).
#[inline]
pub fn fpmac_coeff_f32(acc: &mut [f32], data: &[f32], coeff: f32) {
    for i in 0..acc.len() {
        acc[i] += data[i] * coeff;
    }
}

/// Shift-round-saturate each lane to `i16` via [`crate::fixed::srs`].
#[inline]
pub fn srs_i48_to_i16(acc: &[i64], shift: u32, out: &mut [i16]) {
    for i in 0..out.len() {
        out[i] = crate::fixed::srs(acc[i], shift);
    }
}

/// Shift-round-saturate each lane to `i32` via [`crate::fixed::srs32`].
#[inline]
pub fn srs_i48_to_i32(acc: &[i64], shift: u32, out: &mut [i32]) {
    for i in 0..out.len() {
        out[i] = crate::fixed::srs32(acc[i], shift);
    }
}

/// Upshift each lane via [`crate::fixed::ups`].
#[inline]
pub fn ups_i16_to_i48(v: &[i16], shift: u32, out: &mut [i64]) {
    for i in 0..out.len() {
        out[i] = crate::fixed::ups(v[i], shift);
    }
}

/// Complex MAC over interleaved `re,im` pairs (`acc`/`a`/`b` all hold
/// `acc.len() / 2` complex lanes).
#[inline]
pub fn cmac_c16(acc: &mut [i64], a: &[i16], b: &[i16]) {
    let n = acc.len() / 2;
    for i in 0..n {
        let (ar, ai) = (a[2 * i] as i64, a[2 * i + 1] as i64);
        let (br, bi) = (b[2 * i] as i64, b[2 * i + 1] as i64);
        acc[2 * i] += ar * br - ai * bi;
        acc[2 * i + 1] += ar * bi + ai * br;
    }
}

/// Conjugate complex MAC over interleaved `re,im` pairs.
#[inline]
pub fn cmac_conj_c16(acc: &mut [i64], a: &[i16], b: &[i16]) {
    let n = acc.len() / 2;
    for i in 0..n {
        let (ar, ai) = (a[2 * i] as i64, a[2 * i + 1] as i64);
        let (br, bi) = (b[2 * i] as i64, b[2 * i + 1] as i64);
        acc[2 * i] += ar * br + ai * bi;
        acc[2 * i + 1] += ai * br - ar * bi;
    }
}

/// Complex magnitude-squared over interleaved `re,im` input lanes
/// (`v.len() == 2 * out.len()`).
#[inline]
pub fn cmag_sq_c16(v: &[i16], out: &mut [i64]) {
    for i in 0..out.len() {
        let (re, im) = (v[2 * i] as i64, v[2 * i + 1] as i64);
        out[i] = re * re + im * im;
    }
}

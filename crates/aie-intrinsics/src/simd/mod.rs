//! SIMD-accelerated slice kernels behind a per-thread dispatch tier.
//!
//! The emulated intrinsics ([`crate::vector`], [`crate::acc`],
//! [`crate::complex`]) lower their lane loops onto the slice-level kernels
//! in this module. Every kernel exists in up to three implementations:
//!
//! * **scalar** ([`scalar`]) — the portable per-lane loops, always
//!   compiled, and the reference the other tiers are proptested against;
//! * **SSE2** — 128-bit `core::arch` paths, baseline on `x86_64`
//!   (compiled only with the `simd` cargo feature);
//! * **AVX2** — 256-bit paths selected by runtime feature detection.
//!
//! # Contract
//!
//! Every tier is **bit-exact**: integer ops wrap in two's complement,
//! float ops follow IEEE per-lane ordering with no FMA contraction or
//! reassociation, `min`/`max`/`select` preserve NaN payloads and signed
//! zeros exactly as the scalar loops do, and 48-bit accumulator readout
//! saturates identically. `tests/simd_equivalence.rs` proptests every
//! kernel across all available tiers over full-range inputs.
//!
//! One carve-out, forced by the language rather than by SIMD: when float
//! *arithmetic* (`add`/`sub`/`mul`/`fpmac`) produces a NaN, all tiers
//! produce a NaN for that lane but the payload is unspecified. Which
//! operand's payload survives a two-NaN `addss`/`mulss` depends on operand
//! order, and LLVM freely commutes scalar `fadd`/`fmul` — so payload
//! identity there is unattainable even between two scalar builds.
//! Selection ops (`min`/`max`/`select`/`permute`) and sign ops (`neg`)
//! never launder payloads and remain bit-identical including NaNs.
//!
//! Operation *accounting* is not done here: callers record with
//! [`crate::counter`] before dispatching, so profiles are identical no
//! matter which tier executes.
//!
//! # Tier selection
//!
//! The active tier is thread-local (like the [`crate::counter`]): it
//! defaults to the best tier the build and CPU support, clamped by the
//! `CGSIM_SIMD` environment variable (`scalar`, `sse2` or `avx2`), and can
//! be overridden per thread with [`set_tier`]/[`with_tier`] — that is how
//! the equivalence tests and the scalar-vs-SIMD benches run both paths in
//! one process. Without the `simd` cargo feature only [`Tier::Scalar`]
//! exists and dispatch compiles down to direct scalar calls.

pub mod scalar;

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod avx2;
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod sse2;

use std::cell::Cell;
use std::sync::OnceLock;

/// A SIMD implementation tier, ordered from portable to widest.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// Portable per-lane loops (always available).
    Scalar,
    /// 128-bit SSE2 kernels (x86_64 baseline; needs the `simd` feature).
    Sse2,
    /// 256-bit AVX2 kernels (runtime-detected; needs the `simd` feature).
    Avx2,
}

impl Tier {
    /// Stable lower-case name (`scalar` / `sse2` / `avx2`), as accepted by
    /// the `CGSIM_SIMD` environment variable.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Scalar => "scalar",
            Tier::Sse2 => "sse2",
            Tier::Avx2 => "avx2",
        }
    }

    /// Parse a tier name (case-sensitive, as produced by [`Tier::name`]).
    pub fn from_name(name: &str) -> Option<Tier> {
        match name {
            "scalar" => Some(Tier::Scalar),
            "sse2" => Some(Tier::Sse2),
            "avx2" => Some(Tier::Avx2),
            _ => None,
        }
    }
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Requested tier is not supported by this build/CPU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UnsupportedTier {
    /// The tier that was requested.
    pub requested: Tier,
    /// The best tier this build and CPU support.
    pub capability: Tier,
}

impl std::fmt::Display for UnsupportedTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SIMD tier {} unavailable (capability: {})",
            self.requested, self.capability
        )
    }
}

impl std::error::Error for UnsupportedTier {}

/// Best tier the compiled feature set and the running CPU support,
/// ignoring the `CGSIM_SIMD` clamp.
pub fn capability() -> Tier {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return Tier::Avx2;
        }
        return Tier::Sse2;
    }
    #[allow(unreachable_code)]
    Tier::Scalar
}

/// The process-wide default tier: [`capability`] clamped by `CGSIM_SIMD`.
/// Cached after the first call.
pub fn default_tier() -> Tier {
    static DEFAULT: OnceLock<Tier> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        let cap = capability();
        match std::env::var("CGSIM_SIMD") {
            Ok(name) => match Tier::from_name(name.trim()) {
                Some(req) => req.min(cap),
                None => {
                    eprintln!("CGSIM_SIMD={name:?} not one of scalar/sse2/avx2; using {cap}");
                    cap
                }
            },
            Err(_) => cap,
        }
    })
}

thread_local! {
    // Per-thread override so tests/benches can pin a tier without racing
    // other threads (mirrors the thread-local op counter).
    static TIER: Cell<Option<Tier>> = const { Cell::new(None) };
}

/// The tier ops dispatch to on this thread right now.
#[inline]
pub fn active_tier() -> Tier {
    TIER.with(|t| t.get()).unwrap_or_else(default_tier)
}

/// Tiers this build/CPU/environment can execute, lowest first — the set
/// the equivalence tests sweep.
pub fn available_tiers() -> Vec<Tier> {
    [Tier::Scalar, Tier::Sse2, Tier::Avx2]
        .into_iter()
        .filter(|&t| t <= default_tier())
        .collect()
}

/// Pin this thread's dispatch tier. Fails (leaving the tier unchanged) if
/// the build or CPU cannot execute `tier`.
pub fn set_tier(tier: Tier) -> Result<(), UnsupportedTier> {
    let cap = capability();
    if tier > cap {
        return Err(UnsupportedTier {
            requested: tier,
            capability: cap,
        });
    }
    TIER.with(|t| t.set(Some(tier)));
    Ok(())
}

/// Drop this thread's tier override, reverting to [`default_tier`].
pub fn clear_tier() {
    TIER.with(|t| t.set(None));
}

/// Run `f` with this thread pinned to `tier`, restoring the previous
/// override afterwards.
pub fn with_tier<R>(tier: Tier, f: impl FnOnce() -> R) -> Result<R, UnsupportedTier> {
    let cap = capability();
    if tier > cap {
        return Err(UnsupportedTier {
            requested: tier,
            capability: cap,
        });
    }
    let prev = TIER.with(|t| t.replace(Some(tier)));
    let result = f();
    TIER.with(|t| t.set(prev));
    Ok(result)
}

/// Reinterpret a slice as another element type when `T` and `U` are the
/// same type (zero-cost monomorphised type test; `None` otherwise).
#[inline]
pub(crate) fn cast_slice<T: 'static, U: 'static>(s: &[T]) -> Option<&[U]> {
    if std::any::TypeId::of::<T>() == std::any::TypeId::of::<U>() {
        // SAFETY: TypeId equality proves T and U are the same type.
        Some(unsafe { &*(s as *const [T] as *const [U]) })
    } else {
        None
    }
}

/// Mutable variant of [`cast_slice`].
#[inline]
pub(crate) fn cast_slice_mut<T: 'static, U: 'static>(s: &mut [T]) -> Option<&mut [U]> {
    if std::any::TypeId::of::<T>() == std::any::TypeId::of::<U>() {
        // SAFETY: TypeId equality proves T and U are the same type.
        Some(unsafe { &mut *(s as *mut [T] as *mut [U]) })
    } else {
        None
    }
}

/// Below this many lanes (length of the first slice argument) the AVX2
/// tier routes to the 128-bit kernels instead. `#[target_feature]`
/// functions cannot inline into baseline callers, so a 256-bit call on an
/// 8–16 lane `Vector` op pays call + `vzeroupper` overhead that outweighs
/// the wider datapath; the SSE2 kernels are baseline-target safe functions
/// that inline fully. Every tier is bit-exact, so this routing is a pure
/// performance heuristic — unobservable except in wall-clock.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
const AVX2_MIN_LANES: usize = 32;

/// Route one slice kernel through the active tier. The first argument of
/// every kernel is the slice whose length counts lanes for the
/// [`AVX2_MIN_LANES`] short-slice heuristic. The AVX2 arm is `unsafe`
/// because those functions carry `#[target_feature]`; reaching it
/// requires [`capability`] to have detected AVX2 at startup.
macro_rules! dispatch {
    // `@all`: no short-slice heuristic — for kernels whose AVX2 form is a
    // single wide instruction even at `Vector` widths (8/16 lanes), where
    // routing down would leave the 256-bit path unreachable.
    (@all $name:ident($($arg:expr),*)) => {
        match active_tier() {
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            // SAFETY: Tier::Avx2 is only selectable when AVX2 was detected.
            Tier::Avx2 => unsafe { avx2::$name($($arg),*) },
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            Tier::Sse2 => sse2::$name($($arg),*),
            _ => scalar::$name($($arg),*),
        }
    };
    ($name:ident($first:expr $(, $arg:expr)*)) => {
        match active_tier() {
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            // SAFETY: Tier::Avx2 is only selectable when AVX2 was detected.
            Tier::Avx2 if $first.len() >= AVX2_MIN_LANES => {
                unsafe { avx2::$name($first $(, $arg)*) }
            }
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            Tier::Avx2 | Tier::Sse2 => sse2::$name($first $(, $arg)*),
            _ => scalar::$name($first $(, $arg)*),
        }
    };
}

macro_rules! binary_ops {
    ($($(#[$doc:meta])* $name:ident($t:ty);)*) => {
        $(
            $(#[$doc])*
            #[inline]
            pub fn $name(a: &[$t], b: &[$t], out: &mut [$t]) {
                dispatch!($name(a, b, out))
            }
        )*
    };
}

binary_ops! {
    /// Lane-wise wrapping `a + b`.
    add_i16(i16);
    /// Lane-wise wrapping `a - b`.
    sub_i16(i16);
    /// Lane-wise minimum (`if b < a { b } else { a }`).
    min_i16(i16);
    /// Lane-wise maximum (`if b > a { b } else { a }`).
    max_i16(i16);
    /// Lane-wise wrapping `a + b`.
    add_i32(i32);
    /// Lane-wise wrapping `a - b`.
    sub_i32(i32);
    /// Lane-wise minimum (`if b < a { b } else { a }`).
    min_i32(i32);
    /// Lane-wise maximum (`if b > a { b } else { a }`).
    max_i32(i32);
    /// Lane-wise IEEE `a + b`.
    add_f32(f32);
    /// Lane-wise IEEE `a - b`.
    sub_f32(f32);
    /// Lane-wise IEEE `a * b` (single rounding per lane, no reassociation).
    mul_f32(f32);
    /// Lane-wise minimum with scalar tie/NaN semantics: `b` when `b < a`,
    /// else `a` (so NaN/equal lanes take `a`, preserving bit patterns).
    min_f32(f32);
    /// Lane-wise maximum with scalar tie/NaN semantics: `b` when `b > a`,
    /// else `a`.
    max_f32(f32);
}

/// Lane-wise IEEE negation (sign-bit flip; exact for NaN and ±0).
#[inline]
pub fn neg_f32(a: &[f32], out: &mut [f32]) {
    dispatch!(neg_f32(a, out))
}

macro_rules! select_ops {
    ($($(#[$doc:meta])* $name:ident($t:ty);)*) => {
        $(
            $(#[$doc])*
            #[inline]
            pub fn $name(a: &[$t], b: &[$t], mask: &[bool], out: &mut [$t]) {
                dispatch!($name(a, b, mask, out))
            }
        )*
    };
}

select_ops! {
    /// Lane-wise select: `mask ? a : b`.
    select_i16(i16);
    /// Lane-wise select: `mask ? a : b`.
    select_i32(i32);
    /// Lane-wise select: `mask ? a : b` (pure lane move — NaN-safe).
    select_f32(f32);
}

/// Gather `out[i] = src[pattern[i]]`. Callers validate `pattern` bounds
/// (the `Vector::shuffle` assert) before dispatching.
#[inline]
pub fn permute_f32(src: &[f32], pattern: &[usize], out: &mut [f32]) {
    dispatch!(@all permute_f32(src, pattern, out))
}

/// 48-bit accumulator MAC: `acc[i] += a[i] as i64 * b[i] as i64`.
#[inline]
pub fn mac_i48(acc: &mut [i64], a: &[i16], b: &[i16]) {
    dispatch!(mac_i48(acc, a, b))
}

/// 48-bit accumulator MSC: `acc[i] -= a[i] as i64 * b[i] as i64`.
#[inline]
pub fn msc_i48(acc: &mut [i64], a: &[i16], b: &[i16]) {
    dispatch!(msc_i48(acc, a, b))
}

/// Sliding/broadcast MAC: `acc[i] += data[i] as i64 * coeff as i64`
/// (`data` may be longer than `acc`; the window starts at `data[0]`).
#[inline]
pub fn mac_coeff_i48(acc: &mut [i64], data: &[i16], coeff: i16) {
    dispatch!(mac_coeff_i48(acc, data, coeff))
}

/// Lane-wise accumulator add: `acc[i] += other[i]` (wrapping on the SIMD
/// tiers; real accumulator chains never approach the i64 boundary).
#[inline]
pub fn add_i64(acc: &mut [i64], other: &[i64]) {
    dispatch!(add_i64(acc, other))
}

/// Float MAC with per-step rounding: `acc[i] += a[i] * b[i]` as two IEEE
/// roundings (multiply then add — never fused).
#[inline]
pub fn fpmac_f32(acc: &mut [f32], a: &[f32], b: &[f32]) {
    dispatch!(fpmac_f32(acc, a, b))
}

/// Float MSC: `acc[i] -= a[i] * b[i]` (two roundings, never fused).
#[inline]
pub fn fpmsc_f32(acc: &mut [f32], a: &[f32], b: &[f32]) {
    dispatch!(fpmsc_f32(acc, a, b))
}

/// Sliding/broadcast float MAC: `acc[i] += data[i] * coeff`.
#[inline]
pub fn fpmac_coeff_f32(acc: &mut [f32], data: &[f32], coeff: f32) {
    dispatch!(fpmac_coeff_f32(acc, data, coeff))
}

/// Shift-round-saturate accumulator lanes to `i16`
/// ([`crate::fixed::srs`] per lane).
#[inline]
pub fn srs_i48_to_i16(acc: &[i64], shift: u32, out: &mut [i16]) {
    dispatch!(srs_i48_to_i16(acc, shift, out))
}

/// Shift-round-saturate accumulator lanes to `i32`
/// ([`crate::fixed::srs32`] per lane).
#[inline]
pub fn srs_i48_to_i32(acc: &[i64], shift: u32, out: &mut [i32]) {
    dispatch!(srs_i48_to_i32(acc, shift, out))
}

/// Upshift: widen `i16` lanes into accumulator precision scaled by
/// `2^shift` ([`crate::fixed::ups`] per lane).
#[inline]
pub fn ups_i16_to_i48(v: &[i16], shift: u32, out: &mut [i64]) {
    dispatch!(ups_i16_to_i48(v, shift, out))
}

/// Complex MAC over interleaved `re,im` lanes:
/// `acc.re += ar·br − ai·bi`, `acc.im += ar·bi + ai·br` in full precision.
/// Slices are `i16` pairs (`a`/`b`) and `i64` pairs (`acc`).
#[inline]
pub fn cmac_c16(acc: &mut [i64], a: &[i16], b: &[i16]) {
    dispatch!(cmac_c16(acc, a, b))
}

/// Conjugate complex MAC: `acc.re += ar·br + ai·bi`,
/// `acc.im += ai·br − ar·bi`.
#[inline]
pub fn cmac_conj_c16(acc: &mut [i64], a: &[i16], b: &[i16]) {
    dispatch!(cmac_conj_c16(acc, a, b))
}

/// Complex magnitude-squared: `out[i] = re²  + im²` over interleaved
/// `re,im` input lanes (`v.len() == 2 * out.len()`).
#[inline]
pub fn cmag_sq_c16(v: &[i16], out: &mut [i64]) {
    dispatch!(cmag_sq_c16(v, out))
}

/// Lane-wise min on any ordered element type; SIMD-accelerated for
/// `f32`/`i16`/`i32`, scalar otherwise.
#[inline]
pub fn min_lanes<T: Copy + PartialOrd + 'static>(a: &[T], b: &[T], out: &mut [T]) {
    if let (Some(a), Some(b), Some(out)) = (cast_slice(a), cast_slice(b), cast_slice_mut(out)) {
        return min_f32(a, b, out);
    }
    if let (Some(a), Some(b), Some(out)) = (cast_slice(a), cast_slice(b), cast_slice_mut(out)) {
        return min_i16(a, b, out);
    }
    if let (Some(a), Some(b), Some(out)) = (cast_slice(a), cast_slice(b), cast_slice_mut(out)) {
        return min_i32(a, b, out);
    }
    for i in 0..out.len() {
        out[i] = if b[i] < a[i] { b[i] } else { a[i] };
    }
}

/// Lane-wise max on any ordered element type; SIMD-accelerated for
/// `f32`/`i16`/`i32`, scalar otherwise.
#[inline]
pub fn max_lanes<T: Copy + PartialOrd + 'static>(a: &[T], b: &[T], out: &mut [T]) {
    if let (Some(a), Some(b), Some(out)) = (cast_slice(a), cast_slice(b), cast_slice_mut(out)) {
        return max_f32(a, b, out);
    }
    if let (Some(a), Some(b), Some(out)) = (cast_slice(a), cast_slice(b), cast_slice_mut(out)) {
        return max_i16(a, b, out);
    }
    if let (Some(a), Some(b), Some(out)) = (cast_slice(a), cast_slice(b), cast_slice_mut(out)) {
        return max_i32(a, b, out);
    }
    for i in 0..out.len() {
        out[i] = if b[i] > a[i] { b[i] } else { a[i] };
    }
}

/// Lane-wise select (`mask ? a : b`) on any element type;
/// SIMD-accelerated for `f32`/`i16`/`i32`, scalar otherwise.
#[inline]
pub fn select_lanes<T: Copy + 'static>(a: &[T], b: &[T], mask: &[bool], out: &mut [T]) {
    if let (Some(a), Some(b), Some(out)) = (cast_slice(a), cast_slice(b), cast_slice_mut(out)) {
        return select_f32(a, b, mask, out);
    }
    if let (Some(a), Some(b), Some(out)) = (cast_slice(a), cast_slice(b), cast_slice_mut(out)) {
        return select_i16(a, b, mask, out);
    }
    if let (Some(a), Some(b), Some(out)) = (cast_slice(a), cast_slice(b), cast_slice_mut(out)) {
        return select_i32(a, b, mask, out);
    }
    for i in 0..out.len() {
        out[i] = if mask[i] { a[i] } else { b[i] };
    }
}

/// Gather permute (`out[i] = src[pattern[i]]`) on any element type;
/// SIMD-accelerated for `f32`, scalar otherwise. Bounds are the caller's
/// responsibility (asserted by `Vector::shuffle` before dispatch).
#[inline]
pub fn permute_lanes<T: Copy + 'static>(src: &[T], pattern: &[usize], out: &mut [T]) {
    if let (Some(src), Some(out)) = (cast_slice(src), cast_slice_mut(out)) {
        return permute_f32(src, pattern, out);
    }
    for i in 0..out.len() {
        out[i] = src[pattern[i]];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_names_roundtrip() {
        for t in [Tier::Scalar, Tier::Sse2, Tier::Avx2] {
            assert_eq!(Tier::from_name(t.name()), Some(t));
        }
        assert_eq!(Tier::from_name("neon"), None);
    }

    #[test]
    fn scalar_is_always_available() {
        assert!(available_tiers().contains(&Tier::Scalar));
        assert!(capability() >= Tier::Scalar);
        set_tier(Tier::Scalar).unwrap();
        assert_eq!(active_tier(), Tier::Scalar);
        clear_tier();
        assert_eq!(active_tier(), default_tier());
    }

    #[test]
    fn with_tier_restores_override() {
        set_tier(Tier::Scalar).unwrap();
        let r = with_tier(Tier::Scalar, || 42).unwrap();
        assert_eq!(r, 42);
        assert_eq!(active_tier(), Tier::Scalar);
        clear_tier();
    }

    #[cfg(not(feature = "simd"))]
    #[test]
    fn non_simd_build_rejects_vector_tiers() {
        assert_eq!(capability(), Tier::Scalar);
        assert!(set_tier(Tier::Sse2).is_err());
        assert!(set_tier(Tier::Avx2).is_err());
    }

    #[test]
    fn cast_slice_is_type_keyed() {
        let a = [1i16, 2, 3];
        assert!(cast_slice::<i16, i16>(&a).is_some());
        assert!(cast_slice::<i16, f32>(&a).is_none());
        assert!(cast_slice::<i16, u16>(&a).is_none());
    }
}

//! 256-bit AVX2 kernels — selected when runtime detection finds AVX2.
//!
//! This tier vectorizes everything the dispatch layer exposes, including
//! the pieces SSE2 cannot express: the saturating `srs` readout (64-bit
//! compares + variable blends, with the missing 64-bit arithmetic shift
//! emulated as logical-shift + sign patch), the interleaved complex MACs
//! (full i64 widening — `pmaddwd` is rejected because it wraps when both
//! products are `(-32768)²`), and the dynamic f32 permute
//! (`vpermps`). Exactness rules are the same as [`super::sse2`]: swapped
//! min/max operands for scalar NaN/tie semantics, separate multiply and
//! add roundings, two's-complement wrapping.
//!
//! Every function is `unsafe fn` with `#[target_feature(enable =
//! "avx2")]`: the dispatcher only routes here after
//! [`super::capability`] has detected AVX2 on the running CPU.

#![allow(clippy::missing_safety_doc)]

use core::arch::x86_64::*;

use super::scalar;

macro_rules! binop_256 {
    ($($name:ident($t:ty, $w:expr): |$a:ident, $b:ident| $body:expr;)*) => {
        $(
            /// See the dispatching wrapper in [`super`] for lane semantics.
            #[target_feature(enable = "avx2")]
            pub unsafe fn $name(a: &[$t], b: &[$t], out: &mut [$t]) {
                let n = out.len();
                let mut i = 0;
                while i + $w <= n {
                    let $a = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
                    let $b = _mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i);
                    let r = $body;
                    _mm256_storeu_si256(out.as_mut_ptr().add(i) as *mut __m256i, r);
                    i += $w;
                }
                scalar::$name(&a[i..], &b[i..], &mut out[i..]);
            }
        )*
    };
}

binop_256! {
    add_i16(i16, 16): |va, vb| _mm256_add_epi16(va, vb);
    sub_i16(i16, 16): |va, vb| _mm256_sub_epi16(va, vb);
    min_i16(i16, 16): |va, vb| _mm256_min_epi16(va, vb);
    max_i16(i16, 16): |va, vb| _mm256_max_epi16(va, vb);
    add_i32(i32, 8): |va, vb| _mm256_add_epi32(va, vb);
    sub_i32(i32, 8): |va, vb| _mm256_sub_epi32(va, vb);
    min_i32(i32, 8): |va, vb| _mm256_min_epi32(va, vb);
    max_i32(i32, 8): |va, vb| _mm256_max_epi32(va, vb);
}

macro_rules! binop_256_ps {
    ($($name:ident: |$a:ident, $b:ident| $body:expr;)*) => {
        $(
            /// See the dispatching wrapper in [`super`] for lane semantics.
            #[target_feature(enable = "avx2")]
            pub unsafe fn $name(a: &[f32], b: &[f32], out: &mut [f32]) {
                let n = out.len();
                let mut i = 0;
                while i + 8 <= n {
                    let $a = _mm256_loadu_ps(a.as_ptr().add(i));
                    let $b = _mm256_loadu_ps(b.as_ptr().add(i));
                    _mm256_storeu_ps(out.as_mut_ptr().add(i), $body);
                    i += 8;
                }
                scalar::$name(&a[i..], &b[i..], &mut out[i..]);
            }
        )*
    };
}

binop_256_ps! {
    add_f32: |va, vb| _mm256_add_ps(va, vb);
    sub_f32: |va, vb| _mm256_sub_ps(va, vb);
    mul_f32: |va, vb| _mm256_mul_ps(va, vb);
    // Swapped operands: VMINPS/VMAXPS return the second source on NaN or
    // tie, and the scalar reference keeps `a` there.
    min_f32: |va, vb| _mm256_min_ps(vb, va);
    max_f32: |va, vb| _mm256_max_ps(vb, va);
}

/// Lane-wise IEEE negation (sign-bit XOR).
#[target_feature(enable = "avx2")]
pub unsafe fn neg_f32(a: &[f32], out: &mut [f32]) {
    let n = out.len();
    let mut i = 0;
    let sign = _mm256_set1_ps(-0.0);
    while i + 8 <= n {
        let va = _mm256_loadu_ps(a.as_ptr().add(i));
        _mm256_storeu_ps(out.as_mut_ptr().add(i), _mm256_xor_ps(va, sign));
        i += 8;
    }
    scalar::neg_f32(&a[i..], &mut out[i..]);
}

/// Lane-wise select `mask ? a : b` on i16 lanes.
#[target_feature(enable = "avx2")]
pub unsafe fn select_i16(a: &[i16], b: &[i16], mask: &[bool], out: &mut [i16]) {
    let n = out.len();
    let mut i = 0;
    let zero = _mm256_setzero_si256();
    while i + 16 <= n {
        let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
        let vb = _mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i);
        let m8 = _mm_loadu_si128(mask.as_ptr().add(i) as *const __m128i);
        let m = _mm256_cmpgt_epi16(_mm256_cvtepi8_epi16(m8), zero);
        let r = _mm256_blendv_epi8(vb, va, m);
        _mm256_storeu_si256(out.as_mut_ptr().add(i) as *mut __m256i, r);
        i += 16;
    }
    scalar::select_i16(&a[i..], &b[i..], &mask[i..], &mut out[i..]);
}

/// Widen 8 mask bytes (bool = 0/1) to eight 32-bit all-ones/zero lanes.
#[target_feature(enable = "avx2")]
unsafe fn mask8_to_epi32(mask: *const bool) -> __m256i {
    let m8 = _mm_loadl_epi64(mask as *const __m128i);
    _mm256_cmpgt_epi32(_mm256_cvtepi8_epi32(m8), _mm256_setzero_si256())
}

/// Lane-wise select `mask ? a : b` on i32 lanes.
#[target_feature(enable = "avx2")]
pub unsafe fn select_i32(a: &[i32], b: &[i32], mask: &[bool], out: &mut [i32]) {
    let n = out.len();
    let mut i = 0;
    while i + 8 <= n {
        let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
        let vb = _mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i);
        let m = mask8_to_epi32(mask.as_ptr().add(i));
        let r = _mm256_blendv_epi8(vb, va, m);
        _mm256_storeu_si256(out.as_mut_ptr().add(i) as *mut __m256i, r);
        i += 8;
    }
    scalar::select_i32(&a[i..], &b[i..], &mask[i..], &mut out[i..]);
}

/// Lane-wise select `mask ? a : b` on f32 lanes (pure bit moves).
#[target_feature(enable = "avx2")]
pub unsafe fn select_f32(a: &[f32], b: &[f32], mask: &[bool], out: &mut [f32]) {
    let n = out.len();
    let mut i = 0;
    while i + 8 <= n {
        let va = _mm256_loadu_ps(a.as_ptr().add(i));
        let vb = _mm256_loadu_ps(b.as_ptr().add(i));
        let m = _mm256_castsi256_ps(mask8_to_epi32(mask.as_ptr().add(i)));
        _mm256_storeu_ps(out.as_mut_ptr().add(i), _mm256_blendv_ps(vb, va, m));
        i += 8;
    }
    scalar::select_f32(&a[i..], &b[i..], &mask[i..], &mut out[i..]);
}

/// Dynamic f32 permute via `vpermps` for the register widths the kernels
/// use (8 and 16 lanes); scalar gather otherwise. `pattern` indices are
/// validated by the caller.
#[target_feature(enable = "avx2")]
pub unsafe fn permute_f32(src: &[f32], pattern: &[usize], out: &mut [f32]) {
    #[target_feature(enable = "avx2")]
    unsafe fn load_idx(pattern: &[usize]) -> __m256i {
        let idx: [i32; 8] = std::array::from_fn(|k| pattern[k] as i32);
        _mm256_loadu_si256(idx.as_ptr() as *const __m256i)
    }
    if src.len() == 8 && out.len() == 8 {
        let v = _mm256_loadu_ps(src.as_ptr());
        let r = _mm256_permutevar8x32_ps(v, load_idx(pattern));
        _mm256_storeu_ps(out.as_mut_ptr(), r);
    } else if src.len() == 16 && out.len() == 16 {
        let lo = _mm256_loadu_ps(src.as_ptr());
        let hi = _mm256_loadu_ps(src.as_ptr().add(8));
        let eight = _mm256_set1_epi32(8);
        for half in 0..2 {
            let vidx = load_idx(&pattern[8 * half..]);
            // vpermps only reads the low 3 bits of each index, so the same
            // index vector gathers from both halves; pick per lane after.
            let from_lo = _mm256_permutevar8x32_ps(lo, vidx);
            let from_hi = _mm256_permutevar8x32_ps(hi, vidx);
            let take_lo = _mm256_castsi256_ps(_mm256_cmpgt_epi32(eight, vidx));
            let r = _mm256_blendv_ps(from_hi, from_lo, take_lo);
            _mm256_storeu_ps(out.as_mut_ptr().add(8 * half), r);
        }
    } else {
        scalar::permute_f32(src, pattern, out);
    }
}

/// One 16-lane step of the i16 MAC family.
///
/// `mullo`/`mulhi` produce the exact 32-bit products of all 16 lanes in
/// two multiplies; the in-lane `unpacklo/hi_epi16` interleave reassembles
/// them as i32 in the order `[0..4, 8..12]` (lo) and `[4..8, 12..16]`
/// (hi), so each 128-bit half widens to four *contiguous* i64 accumulator
/// lanes — no cross-lane permute needed, just the right base offsets.
#[target_feature(enable = "avx2")]
unsafe fn mac_step_i48<const SUB: bool>(acc: *mut i64, va16: __m256i, vb16: __m256i) {
    let lo = _mm256_mullo_epi16(va16, vb16);
    let hi = _mm256_mulhi_epi16(va16, vb16);
    let p_even = _mm256_unpacklo_epi16(lo, hi); // products 0..4 | 8..12
    let p_odd = _mm256_unpackhi_epi16(lo, hi); // products 4..8 | 12..16
    let quads = [
        _mm256_cvtepi32_epi64(_mm256_castsi256_si128(p_even)), // acc[0..4]
        _mm256_cvtepi32_epi64(_mm256_castsi256_si128(p_odd)),  // acc[4..8]
        _mm256_cvtepi32_epi64(_mm256_extracti128_si256::<1>(p_even)), // acc[8..12]
        _mm256_cvtepi32_epi64(_mm256_extracti128_si256::<1>(p_odd)), // acc[12..16]
    ];
    for (k, q) in quads.into_iter().enumerate() {
        let ptr = acc.add(4 * k) as *mut __m256i;
        let cur = _mm256_loadu_si256(ptr);
        let r = if SUB {
            _mm256_sub_epi64(cur, q)
        } else {
            _mm256_add_epi64(cur, q)
        };
        _mm256_storeu_si256(ptr, r);
    }
}

/// `acc[i] += a[i] as i64 * b[i] as i64`.
#[target_feature(enable = "avx2")]
pub unsafe fn mac_i48(acc: &mut [i64], a: &[i16], b: &[i16]) {
    let n = acc.len();
    let mut i = 0;
    while i + 16 <= n {
        let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
        let vb = _mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i);
        mac_step_i48::<false>(acc.as_mut_ptr().add(i), va, vb);
        i += 16;
    }
    scalar::mac_i48(&mut acc[i..], &a[i..], &b[i..]);
}

/// `acc[i] -= a[i] as i64 * b[i] as i64`.
#[target_feature(enable = "avx2")]
pub unsafe fn msc_i48(acc: &mut [i64], a: &[i16], b: &[i16]) {
    let n = acc.len();
    let mut i = 0;
    while i + 16 <= n {
        let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
        let vb = _mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i);
        mac_step_i48::<true>(acc.as_mut_ptr().add(i), va, vb);
        i += 16;
    }
    scalar::msc_i48(&mut acc[i..], &a[i..], &b[i..]);
}

/// `acc[i] += data[i] as i64 * coeff as i64`.
#[target_feature(enable = "avx2")]
pub unsafe fn mac_coeff_i48(acc: &mut [i64], data: &[i16], coeff: i16) {
    let n = acc.len();
    let mut i = 0;
    let vb = _mm256_set1_epi16(coeff);
    while i + 16 <= n {
        let va = _mm256_loadu_si256(data.as_ptr().add(i) as *const __m256i);
        mac_step_i48::<false>(acc.as_mut_ptr().add(i), va, vb);
        i += 16;
    }
    scalar::mac_coeff_i48(&mut acc[i..], &data[i..], coeff);
}

/// `acc[i] += other[i]` (wrapping).
#[target_feature(enable = "avx2")]
pub unsafe fn add_i64(acc: &mut [i64], other: &[i64]) {
    let n = acc.len();
    let mut i = 0;
    while i + 4 <= n {
        let ptr = acc.as_mut_ptr().add(i) as *mut __m256i;
        let cur = _mm256_loadu_si256(ptr);
        let o = _mm256_loadu_si256(other.as_ptr().add(i) as *const __m256i);
        _mm256_storeu_si256(ptr, _mm256_add_epi64(cur, o));
        i += 4;
    }
    scalar::add_i64(&mut acc[i..], &other[i..]);
}

macro_rules! fpmac_256 {
    ($($name:ident: $op:ident;)*) => {
        $(
            /// Float MAC step: separate multiply and add/sub roundings.
            #[target_feature(enable = "avx2")]
            pub unsafe fn $name(acc: &mut [f32], a: &[f32], b: &[f32]) {
                let n = acc.len();
                let mut i = 0;
                while i + 8 <= n {
                    let va = _mm256_loadu_ps(a.as_ptr().add(i));
                    let vb = _mm256_loadu_ps(b.as_ptr().add(i));
                    let cur = _mm256_loadu_ps(acc.as_ptr().add(i));
                    let r = $op(cur, _mm256_mul_ps(va, vb));
                    _mm256_storeu_ps(acc.as_mut_ptr().add(i), r);
                    i += 8;
                }
                scalar::$name(&mut acc[i..], &a[i..], &b[i..]);
            }
        )*
    };
}

fpmac_256! {
    fpmac_f32: _mm256_add_ps;
    fpmsc_f32: _mm256_sub_ps;
}

/// `acc[i] += data[i] * coeff` (two roundings per lane).
#[target_feature(enable = "avx2")]
pub unsafe fn fpmac_coeff_f32(acc: &mut [f32], data: &[f32], coeff: f32) {
    let n = acc.len();
    let mut i = 0;
    let vc = _mm256_set1_ps(coeff);
    while i + 8 <= n {
        let vd = _mm256_loadu_ps(data.as_ptr().add(i));
        let cur = _mm256_loadu_ps(acc.as_ptr().add(i));
        _mm256_storeu_ps(
            acc.as_mut_ptr().add(i),
            _mm256_add_ps(cur, _mm256_mul_ps(vd, vc)),
        );
        i += 8;
    }
    scalar::fpmac_coeff_f32(&mut acc[i..], &data[i..], coeff);
}

/// Round-shift four i64 lanes (`crate::fixed::round_shift` semantics):
/// wrapping bias add, then an arithmetic right shift emulated as logical
/// shift + sign patch (AVX2 has no 64-bit arithmetic shift). `shift` must
/// be in `1..64`.
#[target_feature(enable = "avx2")]
unsafe fn round_shift_epi64(x: __m256i, shift: u32) -> __m256i {
    let bias = _mm256_set1_epi64x(1i64 << (shift - 1));
    let x = _mm256_add_epi64(x, bias);
    let cnt = _mm_cvtsi32_si128(shift as i32);
    let srl = _mm256_srl_epi64(x, cnt);
    let sign = _mm256_cmpgt_epi64(_mm256_setzero_si256(), x);
    let fix = _mm256_sll_epi64(sign, _mm_cvtsi32_si128(64 - shift as i32));
    _mm256_or_si256(srl, fix)
}

/// Clamp four i64 lanes to `[lo, hi]`.
#[target_feature(enable = "avx2")]
unsafe fn clamp_epi64(x: __m256i, lo: i64, hi: i64) -> __m256i {
    let hi = _mm256_set1_epi64x(hi);
    let lo = _mm256_set1_epi64x(lo);
    let x = _mm256_blendv_epi8(x, hi, _mm256_cmpgt_epi64(x, hi));
    _mm256_blendv_epi8(x, lo, _mm256_cmpgt_epi64(lo, x))
}

macro_rules! srs_256 {
    ($($name:ident => $t:ty;)*) => {
        $(
            /// Vectorized shift-round-saturate readout; delegates to
            /// scalar for shifts ≥ 64 to preserve its overflow behaviour.
            #[target_feature(enable = "avx2")]
            pub unsafe fn $name(acc: &[i64], shift: u32, out: &mut [$t]) {
                if shift >= 64 {
                    return scalar::$name(acc, shift, out);
                }
                let n = out.len();
                let mut i = 0;
                while i + 4 <= n {
                    let mut x = _mm256_loadu_si256(acc.as_ptr().add(i) as *const __m256i);
                    if shift > 0 {
                        x = round_shift_epi64(x, shift);
                    }
                    x = clamp_epi64(x, <$t>::MIN as i64, <$t>::MAX as i64);
                    let mut tmp = [0i64; 4];
                    _mm256_storeu_si256(tmp.as_mut_ptr() as *mut __m256i, x);
                    for k in 0..4 {
                        out[i + k] = tmp[k] as $t;
                    }
                    i += 4;
                }
                scalar::$name(&acc[i..], shift, &mut out[i..]);
            }
        )*
    };
}

srs_256! {
    srs_i48_to_i16 => i16;
    srs_i48_to_i32 => i32;
}

/// Upshift i16 lanes into i64 accumulator lanes scaled by `2^shift`;
/// delegates to scalar for shifts ≥ 64 to preserve its overflow
/// behaviour.
#[target_feature(enable = "avx2")]
pub unsafe fn ups_i16_to_i48(v: &[i16], shift: u32, out: &mut [i64]) {
    if shift >= 64 {
        return scalar::ups_i16_to_i48(v, shift, out);
    }
    let n = out.len();
    let mut i = 0;
    let cnt = _mm_cvtsi32_si128(shift as i32);
    while i + 8 <= n {
        let v128 = _mm_loadu_si128(v.as_ptr().add(i) as *const __m128i);
        let q03 = _mm256_cvtepi16_epi64(v128);
        let q47 = _mm256_cvtepi16_epi64(_mm_srli_si128::<8>(v128));
        let base = out.as_mut_ptr().add(i);
        _mm256_storeu_si256(base as *mut __m256i, _mm256_sll_epi64(q03, cnt));
        _mm256_storeu_si256(base.add(4) as *mut __m256i, _mm256_sll_epi64(q47, cnt));
        i += 8;
    }
    scalar::ups_i16_to_i48(&v[i..], shift, &mut out[i..]);
}

/// One 4-complex step of the complex MAC family over interleaved lanes.
///
/// Widens every product to i64 before combining — `pmaddwd` would wrap
/// its i32 pair-sum when both products are `(-32768)²`, breaking
/// bit-exactness at the i16 extremes the proptests cover.
#[target_feature(enable = "avx2")]
unsafe fn cmac_step_c16<const CONJ: bool>(acc: *mut i64, a16: __m128i, b16: __m128i) {
    let a32 = _mm256_cvtepi16_epi32(a16); // [ar0,ai0,ar1,ai1,ar2,ai2,ar3,ai3]
    let b32 = _mm256_cvtepi16_epi32(b16);
    let bswap = _mm256_shuffle_epi32::<0b10_11_00_01>(b32); // [bi,br] pairs
    let direct = _mm256_mullo_epi32(a32, b32); // [ar·br, ai·bi, …]
    let cross = _mm256_mullo_epi32(a32, bswap); // [ar·bi, ai·br, …]
    let zero = _mm256_setzero_si256();
    for half in 0..2 {
        let (d, c) = if half == 0 {
            (
                _mm256_cvtepi32_epi64(_mm256_castsi256_si128(direct)),
                _mm256_cvtepi32_epi64(_mm256_castsi256_si128(cross)),
            )
        } else {
            (
                _mm256_cvtepi32_epi64(_mm256_extracti128_si256::<1>(direct)),
                _mm256_cvtepi32_epi64(_mm256_extracti128_si256::<1>(cross)),
            )
        };
        // A = [ar·br, ar·bi] pairs, B = [ai·bi, ai·br] pairs; the result
        // lanes are re = A₀ ∓ B₀, im = A₁ ± B₁ per complex.
        let a = _mm256_unpacklo_epi64(d, c);
        let b = _mm256_unpackhi_epi64(d, c);
        let term = if CONJ {
            // re += ar·br + ai·bi ; im += ai·br − ar·bi
            let aneg = _mm256_sub_epi64(zero, a);
            let amix = _mm256_blend_epi32::<0b11001100>(a, aneg);
            _mm256_add_epi64(amix, b)
        } else {
            // re += ar·br − ai·bi ; im += ar·bi + ai·br
            let bneg = _mm256_sub_epi64(zero, b);
            let bmix = _mm256_blend_epi32::<0b00110011>(b, bneg);
            _mm256_add_epi64(a, bmix)
        };
        let ptr = acc.add(4 * half) as *mut __m256i;
        _mm256_storeu_si256(ptr, _mm256_add_epi64(_mm256_loadu_si256(ptr), term));
    }
}

/// Complex MAC over interleaved `re,im` pairs.
#[target_feature(enable = "avx2")]
pub unsafe fn cmac_c16(acc: &mut [i64], a: &[i16], b: &[i16]) {
    let pairs = acc.len() / 2;
    let mut c = 0;
    while c + 4 <= pairs {
        let a16 = _mm_loadu_si128(a.as_ptr().add(2 * c) as *const __m128i);
        let b16 = _mm_loadu_si128(b.as_ptr().add(2 * c) as *const __m128i);
        cmac_step_c16::<false>(acc.as_mut_ptr().add(2 * c), a16, b16);
        c += 4;
    }
    scalar::cmac_c16(&mut acc[2 * c..], &a[2 * c..], &b[2 * c..]);
}

/// Conjugate complex MAC over interleaved `re,im` pairs.
#[target_feature(enable = "avx2")]
pub unsafe fn cmac_conj_c16(acc: &mut [i64], a: &[i16], b: &[i16]) {
    let pairs = acc.len() / 2;
    let mut c = 0;
    while c + 4 <= pairs {
        let a16 = _mm_loadu_si128(a.as_ptr().add(2 * c) as *const __m128i);
        let b16 = _mm_loadu_si128(b.as_ptr().add(2 * c) as *const __m128i);
        cmac_step_c16::<true>(acc.as_mut_ptr().add(2 * c), a16, b16);
        c += 4;
    }
    scalar::cmac_conj_c16(&mut acc[2 * c..], &a[2 * c..], &b[2 * c..]);
}

/// Complex magnitude-squared over interleaved input lanes.
#[target_feature(enable = "avx2")]
pub unsafe fn cmag_sq_c16(v: &[i16], out: &mut [i64]) {
    let n = out.len();
    let mut i = 0;
    while i + 4 <= n {
        let v16 = _mm_loadu_si128(v.as_ptr().add(2 * i) as *const __m128i);
        let v32 = _mm256_cvtepi16_epi32(v16);
        let sq = _mm256_mullo_epi32(v32, v32); // [re0²,im0²,re1²,im1²,…]
        let d_lo = _mm256_cvtepi32_epi64(_mm256_castsi256_si128(sq));
        let d_hi = _mm256_cvtepi32_epi64(_mm256_extracti128_si256::<1>(sq));
        // Unpack pairs squares as [re²…] / [im²…] in lane order 0,2,1,3.
        let re = _mm256_unpacklo_epi64(d_lo, d_hi);
        let im = _mm256_unpackhi_epi64(d_lo, d_hi);
        let s = _mm256_add_epi64(re, im); // [m0, m2, m1, m3]
        let r = _mm256_permute4x64_epi64::<0b11_01_10_00>(s); // [m0, m1, m2, m3]
        _mm256_storeu_si256(out.as_mut_ptr().add(i) as *mut __m256i, r);
        i += 4;
    }
    scalar::cmag_sq_c16(&v[2 * i..], &mut out[i..]);
}

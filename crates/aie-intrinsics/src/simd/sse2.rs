//! 128-bit SSE2 kernels — the guaranteed baseline vector tier on x86_64.
//!
//! Every function keeps the exact lane semantics of [`super::scalar`]:
//! the float min/max intrinsics are called with swapped operands so their
//! "second source on NaN/tie" rule reproduces the scalar `if b < a { b }
//! else { a }` selection bit-for-bit, float MACs issue separate multiply
//! and add (two roundings — never fused), and integer ops wrap.
//!
//! SSE2 has no 64-bit compares, no variable blends and no 32-bit lane
//! multiply, so the saturating `srs` readout, the complex MACs and the
//! dynamic permute delegate to the scalar kernels at this tier (AVX2
//! vectorizes them). Vector tails shorter than the register width also
//! fall back to the scalar loops on subslices.

#![allow(clippy::missing_safety_doc)]

use core::arch::x86_64::*;

use super::scalar;

macro_rules! binop_128 {
    ($($name:ident($t:ty, $w:expr): |$a:ident, $b:ident| $body:expr;)*) => {
        $(
            /// See the dispatching wrapper in [`super`] for lane semantics.
            #[inline]
            pub fn $name(a: &[$t], b: &[$t], out: &mut [$t]) {
                let n = out.len();
                let mut i = 0;
                unsafe {
                    while i + $w <= n {
                        let $a = _mm_loadu_si128(a.as_ptr().add(i) as *const __m128i);
                        let $b = _mm_loadu_si128(b.as_ptr().add(i) as *const __m128i);
                        let r = $body;
                        _mm_storeu_si128(out.as_mut_ptr().add(i) as *mut __m128i, r);
                        i += $w;
                    }
                }
                scalar::$name(&a[i..], &b[i..], &mut out[i..]);
            }
        )*
    };
}

binop_128! {
    add_i16(i16, 8): |va, vb| _mm_add_epi16(va, vb);
    sub_i16(i16, 8): |va, vb| _mm_sub_epi16(va, vb);
    min_i16(i16, 8): |va, vb| _mm_min_epi16(va, vb);
    max_i16(i16, 8): |va, vb| _mm_max_epi16(va, vb);
    add_i32(i32, 4): |va, vb| _mm_add_epi32(va, vb);
    sub_i32(i32, 4): |va, vb| _mm_sub_epi32(va, vb);
    // No pminsd/pmaxsd before SSE4.1: compare + bitwise blend.
    min_i32(i32, 4): |va, vb| {
        let take_b = _mm_cmpgt_epi32(va, vb); // b < a
        _mm_or_si128(_mm_and_si128(take_b, vb), _mm_andnot_si128(take_b, va))
    };
    max_i32(i32, 4): |va, vb| {
        let take_b = _mm_cmpgt_epi32(vb, va); // b > a
        _mm_or_si128(_mm_and_si128(take_b, vb), _mm_andnot_si128(take_b, va))
    };
}

macro_rules! binop_ps {
    ($($name:ident: |$a:ident, $b:ident| $body:expr;)*) => {
        $(
            /// See the dispatching wrapper in [`super`] for lane semantics.
            #[inline]
            pub fn $name(a: &[f32], b: &[f32], out: &mut [f32]) {
                let n = out.len();
                let mut i = 0;
                unsafe {
                    while i + 4 <= n {
                        let $a = _mm_loadu_ps(a.as_ptr().add(i));
                        let $b = _mm_loadu_ps(b.as_ptr().add(i));
                        _mm_storeu_ps(out.as_mut_ptr().add(i), $body);
                        i += 4;
                    }
                }
                scalar::$name(&a[i..], &b[i..], &mut out[i..]);
            }
        )*
    };
}

binop_ps! {
    add_f32: |va, vb| _mm_add_ps(va, vb);
    sub_f32: |va, vb| _mm_sub_ps(va, vb);
    mul_f32: |va, vb| _mm_mul_ps(va, vb);
    // Operands swapped on purpose: MINPS/MAXPS return the *second* source
    // on NaN or tie, and the scalar reference keeps `a` in those cases.
    min_f32: |va, vb| _mm_min_ps(vb, va);
    max_f32: |va, vb| _mm_max_ps(vb, va);
}

/// Lane-wise IEEE negation (sign-bit XOR).
#[inline]
pub fn neg_f32(a: &[f32], out: &mut [f32]) {
    let n = out.len();
    let mut i = 0;
    unsafe {
        let sign = _mm_set1_ps(-0.0);
        while i + 4 <= n {
            let va = _mm_loadu_ps(a.as_ptr().add(i));
            _mm_storeu_ps(out.as_mut_ptr().add(i), _mm_xor_ps(va, sign));
            i += 4;
        }
    }
    scalar::neg_f32(&a[i..], &mut out[i..]);
}

/// Widen 8 mask bytes (bool = 0/1) to eight 16-bit all-ones/zero lanes.
///
/// # Safety
/// `mask` must have at least 8 readable bytes.
#[inline]
unsafe fn mask8_to_epi16(mask: *const bool) -> __m128i {
    let bytes = (mask as *const i64).read_unaligned();
    let m8 = _mm_cvtsi64_si128(bytes);
    let m16 = _mm_unpacklo_epi8(m8, _mm_setzero_si128());
    _mm_cmpgt_epi16(m16, _mm_setzero_si128())
}

/// Widen 4 mask bytes to four 32-bit all-ones/zero lanes.
///
/// # Safety
/// `mask` must have at least 4 readable bytes.
#[inline]
unsafe fn mask4_to_epi32(mask: *const bool) -> __m128i {
    let bytes = (mask as *const i32).read_unaligned();
    let m8 = _mm_cvtsi32_si128(bytes);
    let m16 = _mm_unpacklo_epi8(m8, _mm_setzero_si128());
    let m32 = _mm_unpacklo_epi16(m16, _mm_setzero_si128());
    _mm_cmpgt_epi32(m32, _mm_setzero_si128())
}

/// Lane-wise select `mask ? a : b` on i16 lanes.
#[inline]
pub fn select_i16(a: &[i16], b: &[i16], mask: &[bool], out: &mut [i16]) {
    let n = out.len();
    let mut i = 0;
    unsafe {
        while i + 8 <= n {
            let va = _mm_loadu_si128(a.as_ptr().add(i) as *const __m128i);
            let vb = _mm_loadu_si128(b.as_ptr().add(i) as *const __m128i);
            let m = mask8_to_epi16(mask.as_ptr().add(i));
            let r = _mm_or_si128(_mm_and_si128(m, va), _mm_andnot_si128(m, vb));
            _mm_storeu_si128(out.as_mut_ptr().add(i) as *mut __m128i, r);
            i += 8;
        }
    }
    scalar::select_i16(&a[i..], &b[i..], &mask[i..], &mut out[i..]);
}

/// Lane-wise select `mask ? a : b` on i32 lanes.
#[inline]
pub fn select_i32(a: &[i32], b: &[i32], mask: &[bool], out: &mut [i32]) {
    let n = out.len();
    let mut i = 0;
    unsafe {
        while i + 4 <= n {
            let va = _mm_loadu_si128(a.as_ptr().add(i) as *const __m128i);
            let vb = _mm_loadu_si128(b.as_ptr().add(i) as *const __m128i);
            let m = mask4_to_epi32(mask.as_ptr().add(i));
            let r = _mm_or_si128(_mm_and_si128(m, va), _mm_andnot_si128(m, vb));
            _mm_storeu_si128(out.as_mut_ptr().add(i) as *mut __m128i, r);
            i += 4;
        }
    }
    scalar::select_i32(&a[i..], &b[i..], &mask[i..], &mut out[i..]);
}

/// Lane-wise select `mask ? a : b` on f32 lanes (pure bit moves — exact
/// for NaN payloads and signed zeros).
#[inline]
pub fn select_f32(a: &[f32], b: &[f32], mask: &[bool], out: &mut [f32]) {
    let n = out.len();
    let mut i = 0;
    unsafe {
        while i + 4 <= n {
            let va = _mm_loadu_ps(a.as_ptr().add(i));
            let vb = _mm_loadu_ps(b.as_ptr().add(i));
            let m = _mm_castsi128_ps(mask4_to_epi32(mask.as_ptr().add(i)));
            let r = _mm_or_ps(_mm_and_ps(m, va), _mm_andnot_ps(m, vb));
            _mm_storeu_ps(out.as_mut_ptr().add(i), r);
            i += 4;
        }
    }
    scalar::select_f32(&a[i..], &b[i..], &mask[i..], &mut out[i..]);
}

/// Dynamic permute — stays scalar at this tier (no variable shuffle
/// before SSSE3/AVX).
#[inline]
pub fn permute_f32(src: &[f32], pattern: &[usize], out: &mut [f32]) {
    scalar::permute_f32(src, pattern, out);
}

/// Widen the four low i32 products to i64 via sign-extension unpack.
#[inline]
unsafe fn widen_lo_epi32_to_epi64(p: __m128i) -> (__m128i, __m128i) {
    let sign = _mm_srai_epi32::<31>(p);
    (_mm_unpacklo_epi32(p, sign), _mm_unpackhi_epi32(p, sign))
}

/// Core of the i16 MAC family: accumulate (or subtract) the widened
/// products of `a`/`b` into `acc`, 8 lanes per step.
#[inline]
unsafe fn mac_step_i48<const SUB: bool>(acc: *mut i64, va: __m128i, vb: __m128i) {
    // Exact i16×i16 → i32 via the mullo/mulhi split, then sign-extend to
    // the i64 accumulator lanes.
    let lo = _mm_mullo_epi16(va, vb);
    let hi = _mm_mulhi_epi16(va, vb);
    let p0123 = _mm_unpacklo_epi16(lo, hi);
    let p4567 = _mm_unpackhi_epi16(lo, hi);
    let (q01, q23) = widen_lo_epi32_to_epi64(p0123);
    let (q45, q67) = widen_lo_epi32_to_epi64(p4567);
    for (k, q) in [q01, q23, q45, q67].into_iter().enumerate() {
        let ptr = acc.add(2 * k) as *mut __m128i;
        let cur = _mm_loadu_si128(ptr);
        let r = if SUB {
            _mm_sub_epi64(cur, q)
        } else {
            _mm_add_epi64(cur, q)
        };
        _mm_storeu_si128(ptr, r);
    }
}

/// `acc[i] += a[i] as i64 * b[i] as i64`.
#[inline]
pub fn mac_i48(acc: &mut [i64], a: &[i16], b: &[i16]) {
    let n = acc.len();
    let mut i = 0;
    unsafe {
        while i + 8 <= n {
            let va = _mm_loadu_si128(a.as_ptr().add(i) as *const __m128i);
            let vb = _mm_loadu_si128(b.as_ptr().add(i) as *const __m128i);
            mac_step_i48::<false>(acc.as_mut_ptr().add(i), va, vb);
            i += 8;
        }
    }
    scalar::mac_i48(&mut acc[i..], &a[i..], &b[i..]);
}

/// `acc[i] -= a[i] as i64 * b[i] as i64`.
#[inline]
pub fn msc_i48(acc: &mut [i64], a: &[i16], b: &[i16]) {
    let n = acc.len();
    let mut i = 0;
    unsafe {
        while i + 8 <= n {
            let va = _mm_loadu_si128(a.as_ptr().add(i) as *const __m128i);
            let vb = _mm_loadu_si128(b.as_ptr().add(i) as *const __m128i);
            mac_step_i48::<true>(acc.as_mut_ptr().add(i), va, vb);
            i += 8;
        }
    }
    scalar::msc_i48(&mut acc[i..], &a[i..], &b[i..]);
}

/// `acc[i] += data[i] as i64 * coeff as i64`.
#[inline]
pub fn mac_coeff_i48(acc: &mut [i64], data: &[i16], coeff: i16) {
    let n = acc.len();
    let mut i = 0;
    unsafe {
        let vb = _mm_set1_epi16(coeff);
        while i + 8 <= n {
            let va = _mm_loadu_si128(data.as_ptr().add(i) as *const __m128i);
            mac_step_i48::<false>(acc.as_mut_ptr().add(i), va, vb);
            i += 8;
        }
    }
    scalar::mac_coeff_i48(&mut acc[i..], &data[i..], coeff);
}

/// `acc[i] += other[i]` (wrapping).
#[inline]
pub fn add_i64(acc: &mut [i64], other: &[i64]) {
    let n = acc.len();
    let mut i = 0;
    unsafe {
        while i + 2 <= n {
            let ptr = acc.as_mut_ptr().add(i) as *mut __m128i;
            let cur = _mm_loadu_si128(ptr);
            let o = _mm_loadu_si128(other.as_ptr().add(i) as *const __m128i);
            _mm_storeu_si128(ptr, _mm_add_epi64(cur, o));
            i += 2;
        }
    }
    scalar::add_i64(&mut acc[i..], &other[i..]);
}

macro_rules! fpmac_128 {
    ($($name:ident: $op:ident;)*) => {
        $(
            /// Float MAC step: separate multiply and add/sub roundings.
            #[inline]
            pub fn $name(acc: &mut [f32], a: &[f32], b: &[f32]) {
                let n = acc.len();
                let mut i = 0;
                unsafe {
                    while i + 4 <= n {
                        let va = _mm_loadu_ps(a.as_ptr().add(i));
                        let vb = _mm_loadu_ps(b.as_ptr().add(i));
                        let cur = _mm_loadu_ps(acc.as_ptr().add(i));
                        let r = $op(cur, _mm_mul_ps(va, vb));
                        _mm_storeu_ps(acc.as_mut_ptr().add(i), r);
                        i += 4;
                    }
                }
                scalar::$name(&mut acc[i..], &a[i..], &b[i..]);
            }
        )*
    };
}

fpmac_128! {
    fpmac_f32: _mm_add_ps;
    fpmsc_f32: _mm_sub_ps;
}

/// `acc[i] += data[i] * coeff` (two roundings per lane).
#[inline]
pub fn fpmac_coeff_f32(acc: &mut [f32], data: &[f32], coeff: f32) {
    let n = acc.len();
    let mut i = 0;
    unsafe {
        let vc = _mm_set1_ps(coeff);
        while i + 4 <= n {
            let vd = _mm_loadu_ps(data.as_ptr().add(i));
            let cur = _mm_loadu_ps(acc.as_ptr().add(i));
            let r = _mm_add_ps(cur, _mm_mul_ps(vd, vc));
            _mm_storeu_ps(acc.as_mut_ptr().add(i), r);
            i += 4;
        }
    }
    scalar::fpmac_coeff_f32(&mut acc[i..], &data[i..], coeff);
}

/// Saturating readout — scalar at this tier (needs 64-bit compares).
#[inline]
pub fn srs_i48_to_i16(acc: &[i64], shift: u32, out: &mut [i16]) {
    scalar::srs_i48_to_i16(acc, shift, out);
}

/// Saturating readout to i32 — scalar at this tier.
#[inline]
pub fn srs_i48_to_i32(acc: &[i64], shift: u32, out: &mut [i32]) {
    scalar::srs_i48_to_i32(acc, shift, out);
}

/// Upshift — scalar at this tier.
#[inline]
pub fn ups_i16_to_i48(v: &[i16], shift: u32, out: &mut [i64]) {
    scalar::ups_i16_to_i48(v, shift, out);
}

/// Complex MAC — scalar at this tier (needs 32-bit lane multiplies).
#[inline]
pub fn cmac_c16(acc: &mut [i64], a: &[i16], b: &[i16]) {
    scalar::cmac_c16(acc, a, b);
}

/// Conjugate complex MAC — scalar at this tier.
#[inline]
pub fn cmac_conj_c16(acc: &mut [i64], a: &[i16], b: &[i16]) {
    scalar::cmac_conj_c16(acc, a, b);
}

/// Complex magnitude-squared — scalar at this tier.
#[inline]
pub fn cmag_sq_c16(v: &[i16], out: &mut [i64]) {
    scalar::cmag_sq_c16(v, out);
}

//! Fixed-width SIMD vector registers.
//!
//! [`Vector<T, N>`] emulates the AIE vector register file: `v8float`,
//! `v16int16`, … are type aliases in the crate root. Lane arithmetic is
//! exact (two's-complement wrapping for integers, IEEE for floats) and every
//! operation records itself with the [`crate::counter`].

use crate::counter::{record, record_n, OpKind};
use std::fmt;
use std::ops::{Add, Index, Mul, Neg, Sub};

/// A SIMD vector of `N` lanes of element type `T`.
#[derive(Clone, Copy, PartialEq)]
pub struct Vector<T, const N: usize> {
    lanes: [T; N],
}

impl<T: Copy + Default, const N: usize> Default for Vector<T, N> {
    fn default() -> Self {
        Vector {
            lanes: [T::default(); N],
        }
    }
}

impl<T: Copy + fmt::Debug, const N: usize> fmt::Debug for Vector<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{N}{:?}", self.lanes)
    }
}

impl<T: Copy, const N: usize> Vector<T, N> {
    /// Construct from a lane array (register move; not counted).
    pub const fn from_array(lanes: [T; N]) -> Self {
        Vector { lanes }
    }

    /// All lanes set to `value` (broadcast).
    pub fn splat(value: T) -> Self {
        record(OpKind::Scalar);
        Vector { lanes: [value; N] }
    }

    /// Load a vector register from memory (counted as one vector load,
    /// matching the AIE's 128/256-bit load units).
    pub fn load(slice: &[T]) -> Self {
        assert!(
            slice.len() >= N,
            "vector load of {N} lanes from slice of {}",
            slice.len()
        );
        record(OpKind::VLoad);
        let lanes: [T; N] = slice[..N].try_into().expect("length asserted above");
        Vector { lanes }
    }

    /// Store the register to memory (one vector store).
    pub fn store(&self, out: &mut [T]) {
        assert!(
            out.len() >= N,
            "vector store of {N} lanes into slice of {}",
            out.len()
        );
        record(OpKind::VStore);
        out[..N].copy_from_slice(&self.lanes);
    }

    /// The lane array.
    pub fn to_array(self) -> [T; N] {
        self.lanes
    }

    /// Read lane `i` (scalar extract).
    pub fn extract(&self, i: usize) -> T {
        record(OpKind::Scalar);
        self.lanes[i]
    }

    /// Return a copy with lane `i` replaced (scalar insert).
    pub fn insert(mut self, i: usize, value: T) -> Self {
        record(OpKind::Scalar);
        self.lanes[i] = value;
        self
    }

    /// Two-source permute: indices `< N` pick from `self`, indices in
    /// `N..2N` pick from `other` (AIE two-input shuffle).
    pub fn shuffle2(&self, other: &Self, pattern: &[usize; N]) -> Self {
        record(OpKind::VShuffle);
        let mut lanes = self.lanes;
        for (o, &p) in lanes.iter_mut().zip(pattern.iter()) {
            assert!(p < 2 * N, "shuffle2 index {p} out of range");
            *o = if p < N {
                self.lanes[p]
            } else {
                other.lanes[p - N]
            };
        }
        Vector { lanes }
    }

    /// Apply `f` lane-wise (helper for building derived intrinsics; counted
    /// as a vector ALU op).
    pub fn map(self, f: impl Fn(T) -> T) -> Self {
        record(OpKind::VAlu);
        let mut lanes = self.lanes;
        for l in &mut lanes {
            *l = f(*l);
        }
        Vector { lanes }
    }

    /// Combine two vectors lane-wise (counted as one vector ALU op).
    pub fn zip_with(self, other: Self, f: impl Fn(T, T) -> T) -> Self {
        record(OpKind::VAlu);
        let mut lanes = self.lanes;
        for i in 0..N {
            lanes[i] = f(self.lanes[i], other.lanes[i]);
        }
        Vector { lanes }
    }

    /// Number of lanes.
    pub const fn lanes() -> usize {
        N
    }

    /// Borrow the lane array (crate-internal zero-copy view for the SIMD
    /// dispatch layer).
    pub(crate) fn lanes_ref(&self) -> &[T; N] {
        &self.lanes
    }
}

impl<T: Copy + 'static, const N: usize> Vector<T, N> {
    /// Permute lanes: output lane `i` takes input lane `pattern[i]`
    /// (the AIE `shuffle`/`select` permute network).
    pub fn shuffle(&self, pattern: &[usize; N]) -> Self {
        record(OpKind::VShuffle);
        for &p in pattern {
            assert!(p < N, "shuffle index {p} out of range for {N} lanes");
        }
        let mut lanes = self.lanes;
        crate::simd::permute_lanes(&self.lanes, pattern, &mut lanes);
        Vector { lanes }
    }

    /// Lane-wise selection: where `mask` is true take `self`, else `other`
    /// (the AIE `select` intrinsic with an immediate mask).
    pub fn select(&self, other: &Self, mask: &[bool; N]) -> Self {
        record(OpKind::VAlu);
        let mut lanes = self.lanes;
        crate::simd::select_lanes(&self.lanes, &other.lanes, mask, &mut lanes);
        Vector { lanes }
    }
}

impl<T: Copy + PartialOrd + 'static, const N: usize> Vector<T, N> {
    /// Lane-wise minimum (AIE `min` — one vector ALU op).
    pub fn min(&self, other: &Self) -> Self {
        record(OpKind::VAlu);
        let mut lanes = self.lanes;
        crate::simd::min_lanes(&self.lanes, &other.lanes, &mut lanes);
        Vector { lanes }
    }

    /// Lane-wise maximum (AIE `max`).
    pub fn max(&self, other: &Self) -> Self {
        record(OpKind::VAlu);
        let mut lanes = self.lanes;
        crate::simd::max_lanes(&self.lanes, &other.lanes, &mut lanes);
        Vector { lanes }
    }
}

impl<T: Copy + PartialOrd, const N: usize> Vector<T, N> {
    /// Lane-wise `<` comparison mask (AIE `lt`).
    pub fn lt(&self, other: &Self) -> [bool; N] {
        record(OpKind::VAlu);
        let mut mask = [false; N];
        for i in 0..N {
            mask[i] = self.lanes[i] < other.lanes[i];
        }
        mask
    }
}

impl<T, const N: usize> Index<usize> for Vector<T, N> {
    type Output = T;
    fn index(&self, i: usize) -> &T {
        &self.lanes[i]
    }
}

macro_rules! float_vector_ops {
    ($t:ty, $add:ident, $sub:ident, $mul:ident, $neg:ident) => {
        impl<const N: usize> Add for Vector<$t, N> {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                record(OpKind::VAlu);
                let mut lanes = self.lanes;
                crate::simd::$add(&self.lanes, &rhs.lanes, &mut lanes);
                Vector { lanes }
            }
        }
        impl<const N: usize> Sub for Vector<$t, N> {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                record(OpKind::VAlu);
                let mut lanes = self.lanes;
                crate::simd::$sub(&self.lanes, &rhs.lanes, &mut lanes);
                Vector { lanes }
            }
        }
        impl<const N: usize> Neg for Vector<$t, N> {
            type Output = Self;
            fn neg(self) -> Self {
                record(OpKind::VAlu);
                let mut lanes = self.lanes;
                crate::simd::$neg(&self.lanes, &mut lanes);
                Vector { lanes }
            }
        }
        impl<const N: usize> Mul for Vector<$t, N> {
            type Output = Self;
            fn mul(self, rhs: Self) -> Self {
                record(OpKind::VMac); // multiplies use the MAC datapath
                let mut lanes = self.lanes;
                crate::simd::$mul(&self.lanes, &rhs.lanes, &mut lanes);
                Vector { lanes }
            }
        }

        impl<const N: usize> Vector<$t, N> {
            /// Horizontal sum of all lanes (reduction tree on the vector
            /// unit: counted as one ALU op per tree level). The summation
            /// order is sequential — part of the bit-exactness contract —
            /// so this stays scalar on every dispatch tier.
            pub fn reduce_add(self) -> $t {
                let mut width = N;
                let mut levels = 0u64;
                while width > 1 {
                    levels += 1;
                    width /= 2;
                }
                record_n(OpKind::VAlu, levels);
                self.lanes.iter().copied().sum()
            }
        }
    };
}

float_vector_ops!(f32, add_f32, sub_f32, mul_f32, neg_f32);

macro_rules! int_vector_ops {
    ($t:ty, $add:ident, $sub:ident) => {
        impl<const N: usize> Add for Vector<$t, N> {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                record(OpKind::VAlu);
                let mut lanes = self.lanes;
                crate::simd::$add(&self.lanes, &rhs.lanes, &mut lanes);
                Vector { lanes }
            }
        }
        impl<const N: usize> Sub for Vector<$t, N> {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                record(OpKind::VAlu);
                let mut lanes = self.lanes;
                crate::simd::$sub(&self.lanes, &rhs.lanes, &mut lanes);
                Vector { lanes }
            }
        }
    };
}

int_vector_ops!(i16, add_i16, sub_i16);
int_vector_ops!(i32, add_i32, sub_i32);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::{reset_counts, snapshot_counts, OpKind};
    use proptest::prelude::*;

    #[test]
    fn load_store_roundtrip() {
        let data: Vec<f32> = (0..8).map(|i| i as f32).collect();
        let v = Vector::<f32, 8>::load(&data);
        let mut out = [0.0f32; 8];
        v.store(&mut out);
        assert_eq!(out.to_vec(), data);
    }

    #[test]
    #[should_panic(expected = "vector load")]
    fn short_load_panics() {
        let _ = Vector::<f32, 8>::load(&[1.0, 2.0]);
    }

    #[test]
    fn splat_and_extract() {
        let v = Vector::<i16, 16>::splat(7);
        assert_eq!(v.extract(0), 7);
        assert_eq!(v.extract(15), 7);
        let v2 = v.insert(3, -1);
        assert_eq!(v2.extract(3), -1);
        assert_eq!(v2.extract(4), 7);
    }

    #[test]
    fn shuffle_reverses() {
        let v = Vector::<i32, 4>::from_array([10, 20, 30, 40]);
        let r = v.shuffle(&[3, 2, 1, 0]);
        assert_eq!(r.to_array(), [40, 30, 20, 10]);
    }

    #[test]
    fn shuffle2_interleaves_sources() {
        let a = Vector::<i32, 4>::from_array([0, 1, 2, 3]);
        let b = Vector::<i32, 4>::from_array([100, 101, 102, 103]);
        let r = a.shuffle2(&b, &[0, 4, 1, 5]);
        assert_eq!(r.to_array(), [0, 100, 1, 101]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn shuffle_rejects_bad_index() {
        let v = Vector::<i32, 4>::from_array([0; 4]);
        let _ = v.shuffle(&[0, 1, 2, 4]);
    }

    #[test]
    fn min_max_select() {
        let a = Vector::<f32, 4>::from_array([1.0, 5.0, 3.0, 7.0]);
        let b = Vector::<f32, 4>::from_array([2.0, 4.0, 3.0, 6.0]);
        assert_eq!(a.min(&b).to_array(), [1.0, 4.0, 3.0, 6.0]);
        assert_eq!(a.max(&b).to_array(), [2.0, 5.0, 3.0, 7.0]);
        let mask = a.lt(&b);
        assert_eq!(mask, [true, false, false, false]);
        assert_eq!(a.select(&b, &mask).to_array(), [1.0, 4.0, 3.0, 6.0]);
    }

    #[test]
    fn float_arithmetic() {
        let a = Vector::<f32, 4>::from_array([1.0, 2.0, 3.0, 4.0]);
        let b = Vector::<f32, 4>::splat(2.0);
        assert_eq!((a + b).to_array(), [3.0, 4.0, 5.0, 6.0]);
        assert_eq!((a - b).to_array(), [-1.0, 0.0, 1.0, 2.0]);
        assert_eq!((a * b).to_array(), [2.0, 4.0, 6.0, 8.0]);
        assert_eq!((-a).to_array(), [-1.0, -2.0, -3.0, -4.0]);
        assert_eq!(a.reduce_add(), 10.0);
    }

    #[test]
    fn integer_arithmetic_wraps() {
        let a = Vector::<i16, 4>::from_array([i16::MAX, 0, -1, 5]);
        let b = Vector::<i16, 4>::from_array([1, 0, -1, 5]);
        assert_eq!((a + b).to_array(), [i16::MIN, 0, -2, 10]);
        assert_eq!((a - b).to_array(), [i16::MAX - 1, 0, 0, 0]);
    }

    #[test]
    fn ops_are_counted() {
        reset_counts();
        let a = Vector::<f32, 8>::load(&[1.0; 8]);
        let b = Vector::<f32, 8>::splat(2.0);
        let _ = a * b;
        let _ = a + b;
        let _ = a.shuffle(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let mut out = [0.0; 8];
        a.store(&mut out);
        let c = snapshot_counts();
        assert_eq!(c.get(OpKind::VLoad), 1);
        assert_eq!(c.get(OpKind::VMac), 1);
        assert_eq!(c.get(OpKind::VAlu), 1);
        assert_eq!(c.get(OpKind::VShuffle), 1);
        assert_eq!(c.get(OpKind::VStore), 1);
    }

    proptest! {
        /// Shuffling with the identity pattern is a no-op.
        #[test]
        fn identity_shuffle(vals in proptest::array::uniform8(any::<i32>())) {
            let v = Vector::<i32, 8>::from_array(vals);
            let id = [0usize, 1, 2, 3, 4, 5, 6, 7];
            prop_assert_eq!(v.shuffle(&id).to_array(), vals);
        }

        /// min and max partition each lane pair: {min, max} = {a, b}.
        #[test]
        fn min_max_partition(a in proptest::array::uniform4(any::<i32>()),
                             b in proptest::array::uniform4(any::<i32>())) {
            let va = Vector::<i32, 4>::from_array(a);
            let vb = Vector::<i32, 4>::from_array(b);
            let mn = va.min(&vb).to_array();
            let mx = va.max(&vb).to_array();
            for i in 0..4 {
                let mut expect = [a[i], b[i]];
                expect.sort_unstable();
                prop_assert_eq!([mn[i], mx[i]], expect);
            }
        }

        /// reduce_add matches a scalar sum.
        #[test]
        fn reduce_add_matches_scalar(vals in proptest::array::uniform8(-1000i32..1000)) {
            let f: [f32; 8] = vals.map(|v| v as f32);
            let v = Vector::<f32, 8>::from_array(f);
            let scalar: f32 = f.iter().sum();
            prop_assert_eq!(v.reduce_add(), scalar);
        }
    }
}

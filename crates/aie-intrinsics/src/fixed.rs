//! Fixed-point datapath conversions.
//!
//! AIE fixed-point kernels move between narrow storage types and wide
//! accumulators through two datapath operations:
//!
//! * **`srs`** (shift-round-saturate): scale an accumulator down by a power
//!   of two with round-half-up (the AIE default rounding mode when
//!   configured symmetrically) and saturate into the narrow type;
//! * **`ups`** (upshift): widen a narrow value into accumulator precision,
//!   scaled up by a power of two.
//!
//! Plus Q-format helpers used by the Farrow example to quantise filter
//! coefficients.

/// Shift-round-saturate a wide accumulator lane to `i16`.
///
/// Computes `round_half_up(value / 2^shift)` saturated to the `i16` range.
#[inline]
pub fn srs(value: i64, shift: u32) -> i16 {
    saturate_i16(round_shift(value, shift))
}

/// Shift-round-saturate a wide accumulator lane to `i32`.
#[inline]
pub fn srs32(value: i64, shift: u32) -> i32 {
    let r = round_shift(value, shift);
    if r > i32::MAX as i64 {
        i32::MAX
    } else if r < i32::MIN as i64 {
        i32::MIN
    } else {
        r as i32
    }
}

/// Upshift: widen `value` into accumulator precision scaled by `2^shift`
/// (the AIE `ups` intrinsic).
#[inline]
pub fn ups(value: i16, shift: u32) -> i64 {
    (value as i64) << shift
}

/// Round-half-up division by `2^shift` without saturation.
#[inline]
fn round_shift(value: i64, shift: u32) -> i64 {
    if shift == 0 {
        return value;
    }
    let bias = 1i64 << (shift - 1);
    // Arithmetic shift after adding half of the divisor implements
    // round-half-up for both signs (matching the AIE rounding mode
    // `rnd_sym_inf` for positive bias).
    (value.wrapping_add(bias)) >> shift
}

#[inline]
fn saturate_i16(v: i64) -> i16 {
    if v > i16::MAX as i64 {
        i16::MAX
    } else if v < i16::MIN as i64 {
        i16::MIN
    } else {
        v as i16
    }
}

/// Quantise a real coefficient into Qm.n fixed point (`n` fractional bits),
/// saturating to the `i16` range. Used when porting the Farrow filter's
/// floating-point prototype coefficients to the fixed-point kernel.
pub fn quantize_q15(value: f64, frac_bits: u32) -> i16 {
    let scaled = (value * f64::from(1u32 << frac_bits)).round();
    if scaled > i16::MAX as f64 {
        i16::MAX
    } else if scaled < i16::MIN as f64 {
        i16::MIN
    } else {
        scaled as i16
    }
}

/// Convert a Qm.n fixed-point value back to a real number.
pub fn dequantize_q15(value: i16, frac_bits: u32) -> f64 {
    f64::from(value) / f64::from(1u32 << frac_bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn srs_rounds_half_up() {
        assert_eq!(srs(10, 2), 3); // 2.5 → 3
        assert_eq!(srs(9, 2), 2); // 2.25 → 2
        assert_eq!(srs(11, 2), 3); // 2.75 → 3
        assert_eq!(srs(-10, 2), -2); // -2.5 → -2 (half-up = toward +inf)
        assert_eq!(srs(-11, 2), -3); // -2.75 → -3
        assert_eq!(srs(7, 0), 7);
    }

    #[test]
    fn srs_saturates() {
        assert_eq!(srs(1 << 40, 8), i16::MAX);
        assert_eq!(srs(-(1 << 40), 8), i16::MIN);
        assert_eq!(srs32(1 << 62, 8), i32::MAX);
        assert_eq!(srs32(-(1 << 62), 8), i32::MIN);
    }

    #[test]
    fn ups_then_srs_is_identity() {
        for v in [-32768i16, -1, 0, 1, 12345, 32767] {
            assert_eq!(srs(ups(v, 10), 10), v);
        }
    }

    #[test]
    fn quantize_roundtrip_within_lsb() {
        for v in [-0.99, -0.5, 0.0, 0.123, 0.5, 0.99] {
            let q = quantize_q15(v, 15);
            let back = dequantize_q15(q, 15);
            assert!((back - v).abs() <= 1.0 / 32768.0, "{v} → {q} → {back}");
        }
    }

    #[test]
    fn quantize_saturates() {
        assert_eq!(quantize_q15(1.5, 15), i16::MAX);
        assert_eq!(quantize_q15(-1.5, 15), i16::MIN);
    }

    proptest! {
        /// srs output is always within i16 and within 1 LSB of exact
        /// division.
        #[test]
        fn srs_error_bounded(v in any::<i32>(), shift in 1u32..16) {
            let out = srs(v as i64, shift) as f64;
            let exact = (v as f64) / f64::from(1u32 << shift);
            if exact.abs() < 32000.0 {
                prop_assert!((out - exact).abs() <= 0.5 + 1e-9,
                    "v={v} shift={shift} out={out} exact={exact}");
            }
        }

        /// ups/srs roundtrip for every i16 and shift.
        #[test]
        fn ups_srs_roundtrip(v in any::<i16>(), shift in 0u32..30) {
            prop_assert_eq!(srs(ups(v, shift), shift), v);
        }

        /// srs is monotone in its input.
        #[test]
        fn srs_monotone(a in any::<i32>(), b in any::<i32>(), shift in 0u32..16) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(srs(lo as i64, shift) <= srs(hi as i64, shift));
        }
    }
}

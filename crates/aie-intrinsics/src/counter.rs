//! Thread-local instruction counting.
//!
//! AMD's emulation headers reproduce intrinsic *values*; this crate
//! additionally reproduces intrinsic *cost inputs*. Every emulated operation
//! records one event here; `aie-sim` converts the counts into cycles with a
//! VLIW slot-packing model. Counting is thread-local so concurrently
//! simulated kernels (the thread-per-kernel runtime) do not interfere.

use std::cell::Cell;
use std::fmt;

/// Classes of operations the cost model distinguishes.
///
/// The granularity follows the AIE1 core's issue slots: one vector ALU/MAC
/// op, two loads, one store and scalar/move ops can issue per cycle
/// (AM009/UG1079). Shuffles occupy the vector unit's permute stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Vector multiply or multiply-accumulate (fixed or float).
    VMac,
    /// Vector add/sub/min/max/compare/select — simple vector ALU ops.
    VAlu,
    /// Vector lane permute (shuffle/select patterns).
    VShuffle,
    /// Shift-round-saturate / upshift datapath conversions.
    VSrs,
    /// Vector register load from local memory.
    VLoad,
    /// Vector register store to local memory.
    VStore,
    /// Scalar ALU operation.
    Scalar,
}

impl OpKind {
    /// All kinds, for iteration in reports.
    pub const ALL: [OpKind; 7] = [
        OpKind::VMac,
        OpKind::VAlu,
        OpKind::VShuffle,
        OpKind::VSrs,
        OpKind::VLoad,
        OpKind::VStore,
        OpKind::Scalar,
    ];

    fn index(self) -> usize {
        match self {
            OpKind::VMac => 0,
            OpKind::VAlu => 1,
            OpKind::VShuffle => 2,
            OpKind::VSrs => 3,
            OpKind::VLoad => 4,
            OpKind::VStore => 5,
            OpKind::Scalar => 6,
        }
    }
}

/// A snapshot of per-kind operation counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCounts {
    counts: [u64; 7],
}

impl OpCounts {
    /// Count for one kind.
    pub fn get(&self, kind: OpKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Total operations of all kinds.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Element-wise sum of two snapshots.
    pub fn merged(mut self, other: OpCounts) -> OpCounts {
        for i in 0..self.counts.len() {
            self.counts[i] += other.counts[i];
        }
        self
    }

    /// Element-wise difference (`self - earlier`); saturates at zero.
    pub fn since(mut self, earlier: OpCounts) -> OpCounts {
        for i in 0..self.counts.len() {
            self.counts[i] = self.counts[i].saturating_sub(earlier.counts[i]);
        }
        self
    }
}

impl fmt::Display for OpCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for kind in OpKind::ALL {
            let n = self.get(kind);
            if n > 0 {
                if !first {
                    write!(f, ", ")?;
                }
                write!(f, "{kind:?}={n}")?;
                first = false;
            }
        }
        if first {
            write!(f, "(none)")?;
        }
        Ok(())
    }
}

thread_local! {
    // Plain `Cell`s rather than a `RefCell`: `record` sits on the hot path
    // of every emulated intrinsic, and a `Cell` increment is a bare
    // load/add/store with no borrow-flag bookkeeping.
    static COUNTS: [Cell<u64>; 7] = const { [const { Cell::new(0) }; 7] };
}

/// Record one operation of the given kind (called by every emulated
/// intrinsic).
#[inline]
pub fn record(kind: OpKind) {
    record_n(kind, 1);
}

/// Record `n` operations of the given kind in one counter update.
///
/// Batched instrumentation for callers that issue a statically known run of
/// identical ops (reduction trees, per-lane scalar loops, window I/O):
/// `record_n(k, n)` leaves the profile in exactly the same state as `n`
/// calls to `record(k)`, at the cost of a single thread-local access.
#[inline]
pub fn record_n(kind: OpKind, n: u64) {
    COUNTS.with(|c| {
        let cell = &c[kind.index()];
        cell.set(cell.get() + n);
    });
}

/// Reset this thread's counters to zero.
pub fn reset_counts() {
    COUNTS.with(|c| {
        for cell in c {
            cell.set(0);
        }
    });
}

/// Read this thread's counters.
pub fn snapshot_counts() -> OpCounts {
    COUNTS.with(|c| OpCounts {
        counts: std::array::from_fn(|i| c[i].get()),
    })
}

/// Run `f` with fresh counters and return its result together with the ops
/// it recorded; the previous counter state is restored afterwards, so
/// metered sections nest cleanly.
pub fn metered<R>(f: impl FnOnce() -> R) -> (R, OpCounts) {
    let outer = snapshot_counts();
    reset_counts();
    let result = f();
    let inner = snapshot_counts();
    let merged = outer.merged(inner);
    COUNTS.with(|c| {
        for (cell, &v) in c.iter().zip(merged.counts.iter()) {
            cell.set(v);
        }
    });
    (result, inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        reset_counts();
        record(OpKind::VMac);
        record(OpKind::VMac);
        record(OpKind::VLoad);
        let c = snapshot_counts();
        assert_eq!(c.get(OpKind::VMac), 2);
        assert_eq!(c.get(OpKind::VLoad), 1);
        assert_eq!(c.get(OpKind::VStore), 0);
        assert_eq!(c.total(), 3);
        reset_counts();
        assert_eq!(snapshot_counts().total(), 0);
    }

    #[test]
    fn record_n_equals_n_records() {
        for kind in OpKind::ALL {
            for n in [0u64, 1, 2, 7, 64] {
                reset_counts();
                record_n(kind, n);
                let batched = snapshot_counts();
                reset_counts();
                for _ in 0..n {
                    record(kind);
                }
                let unrolled = snapshot_counts();
                assert_eq!(batched, unrolled, "{kind:?} × {n}");
            }
        }
        reset_counts();
    }

    #[test]
    fn metered_sections_nest_and_restore() {
        reset_counts();
        record(OpKind::Scalar);
        let ((), inner) = metered(|| {
            record(OpKind::VMac);
            record(OpKind::VMac);
        });
        assert_eq!(inner.get(OpKind::VMac), 2);
        assert_eq!(inner.get(OpKind::Scalar), 0);
        // Outer counts preserved and inner merged back.
        let outer = snapshot_counts();
        assert_eq!(outer.get(OpKind::Scalar), 1);
        assert_eq!(outer.get(OpKind::VMac), 2);
    }

    #[test]
    fn since_subtracts() {
        let mut a = OpCounts::default();
        a.counts[0] = 10;
        let mut b = OpCounts::default();
        b.counts[0] = 3;
        assert_eq!(a.since(b).get(OpKind::VMac), 7);
        assert_eq!(b.since(a).get(OpKind::VMac), 0); // saturating
    }

    #[test]
    fn display_lists_nonzero_kinds() {
        let mut c = OpCounts::default();
        c.counts[0] = 5;
        c.counts[4] = 2;
        let s = c.to_string();
        assert!(s.contains("VMac=5") && s.contains("VLoad=2"));
        assert_eq!(OpCounts::default().to_string(), "(none)");
    }

    #[test]
    fn counters_are_thread_local() {
        reset_counts();
        record(OpKind::VMac);
        std::thread::spawn(|| {
            assert_eq!(snapshot_counts().total(), 0);
            record(OpKind::VAlu);
        })
        .join()
        .unwrap();
        assert_eq!(snapshot_counts().get(OpKind::VAlu), 0);
        assert_eq!(snapshot_counts().get(OpKind::VMac), 1);
    }
}

//! Higher-level vector algorithms built from the emulated intrinsics.
//!
//! These correspond to the AIE API's algorithmic helpers the evaluation
//! kernels lean on: the bitonic compare-exchange network building blocks and
//! interleave patterns (`shuffle_up/down`, unzip/zip) documented in UG1079.

use crate::counter::{record, OpKind};
use crate::vector::Vector;

/// Compare-exchange two vectors lane-wise: returns `(min, max)` — the core
/// step of a bitonic merge network.
pub fn compare_exchange<T: Copy + PartialOrd + 'static, const N: usize>(
    a: &Vector<T, N>,
    b: &Vector<T, N>,
) -> (Vector<T, N>, Vector<T, N>) {
    (a.min(b), a.max(b))
}

/// Generate the butterfly permutation pattern of `stride` for an `N`-lane
/// vector: lane `i` maps to `i ^ stride`. Used to build bitonic stages.
pub fn butterfly_pattern<const N: usize>(stride: usize) -> [usize; N] {
    assert!(stride > 0 && stride < N && N.is_power_of_two());
    std::array::from_fn(|i| i ^ stride)
}

/// One in-register bitonic compare-exchange stage over lane distance
/// `stride`, with direction per lane taken from `ascending` (true = keep the
/// smaller value in the lower lane).
///
/// This mirrors how the AMD bitonic example composes `shuffle`, `min`, `max`
/// and `select` instead of scalar comparisons.
pub fn bitonic_stage<T: Copy + PartialOrd + 'static, const N: usize>(
    v: &Vector<T, N>,
    stride: usize,
    ascending: &[bool; N],
) -> Vector<T, N> {
    let partner = v.shuffle(&butterfly_pattern::<N>(stride));
    let mn = v.min(&partner);
    let mx = v.max(&partner);
    // Lane i keeps min when (it is the lower index of its pair) == ascending.
    let mut keep_min = [false; N];
    for (i, k) in keep_min.iter_mut().enumerate() {
        let lower = i & stride == 0;
        *k = lower == ascending[i];
    }
    mn.select(&mx, &keep_min)
}

/// Full 16-lane bitonic sort of one vector register, ascending — the
/// algorithm of the AMD `bitonic-sorting` example graph, expressed with the
/// same shuffle/min/max/select instruction mix.
pub fn bitonic_sort16(v: Vector<f32, 16>) -> Vector<f32, 16> {
    let mut v = v;
    // Stages k = 2, 4, 8, 16 (run size); within each, strides k/2 … 1.
    let mut k = 2usize;
    while k <= 16 {
        let mut stride = k / 2;
        while stride >= 1 {
            // Direction per lane: ascending iff bit `k` of the lane index is
            // clear (standard bitonic network formulation).
            let ascending: [bool; 16] = std::array::from_fn(|i| i & k == 0);
            v = bitonic_stage(&v, stride, &ascending);
            stride /= 2;
        }
        k *= 2;
    }
    v
}

/// Interleave the even lanes of `a` with the even lanes of `b`
/// (`zip`-style): output = `[a0, b0, a1, b1, …]` over the first `N/2` lanes
/// of each input.
pub fn zip_lo<T: Copy, const N: usize>(a: &Vector<T, N>, b: &Vector<T, N>) -> Vector<T, N> {
    let pattern: [usize; N] = std::array::from_fn(|i| if i % 2 == 0 { i / 2 } else { N + i / 2 });
    a.shuffle2(b, &pattern)
}

/// De-interleave: gather even lanes of the `a:b` concatenation —
/// output = `[a0, a2, …, b0, b2, …]`.
pub fn unzip_even<T: Copy, const N: usize>(a: &Vector<T, N>, b: &Vector<T, N>) -> Vector<T, N> {
    let pattern: [usize; N] = std::array::from_fn(|i| {
        if i < N / 2 {
            2 * i
        } else {
            N + 2 * (i - N / 2)
        }
    });
    a.shuffle2(b, &pattern)
}

/// Shift the lane window up by `k`: output lane `i` = input lane `i+k`,
/// with the top `k` lanes filled from `next` (the AIE `shift_bytes` /
/// stream-advance idiom used by FIR kernels to slide their data window).
pub fn shift_lanes_up<T: Copy, const N: usize>(
    v: &Vector<T, N>,
    next: &Vector<T, N>,
    k: usize,
) -> Vector<T, N> {
    assert!(k <= N);
    record(OpKind::VShuffle);
    let a = v.to_array();
    let b = next.to_array();
    Vector::from_array(std::array::from_fn(|i| {
        if i + k < N {
            a[i + k]
        } else {
            b[i + k - N]
        }
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn compare_exchange_orders_pairs() {
        let a = Vector::<i32, 4>::from_array([5, 1, 7, 2]);
        let b = Vector::<i32, 4>::from_array([3, 4, 6, 9]);
        let (mn, mx) = compare_exchange(&a, &b);
        assert_eq!(mn.to_array(), [3, 1, 6, 2]);
        assert_eq!(mx.to_array(), [5, 4, 7, 9]);
    }

    #[test]
    fn butterfly_pattern_is_involution() {
        let p = butterfly_pattern::<8>(2);
        for (i, &t) in p.iter().enumerate() {
            assert_eq!(p[t], i);
        }
        assert_eq!(p, [2, 3, 0, 1, 6, 7, 4, 5]);
    }

    #[test]
    fn bitonic_sort16_sorts_known_input() {
        let input: [f32; 16] = [
            9.0, -3.0, 5.5, 0.0, 12.0, -8.0, 7.0, 1.0, 3.0, 3.0, -1.0, 100.0, -50.0, 2.5, 6.0, 4.0,
        ];
        let sorted = bitonic_sort16(Vector::from_array(input)).to_array();
        let mut expect = input;
        expect.sort_by(f32::total_cmp);
        assert_eq!(sorted, expect);
    }

    #[test]
    fn zip_unzip_are_inverse_on_even_data() {
        let a = Vector::<i32, 8>::from_array([0, 1, 2, 3, 4, 5, 6, 7]);
        let b = Vector::<i32, 8>::from_array([10, 11, 12, 13, 14, 15, 16, 17]);
        let zipped = zip_lo(&a, &b);
        assert_eq!(zipped.to_array(), [0, 10, 1, 11, 2, 12, 3, 13]);
        let hi_pattern: [usize; 8] =
            std::array::from_fn(|i| if i % 2 == 0 { 4 + i / 2 } else { 12 + i / 2 });
        let zipped_hi = a.shuffle2(&b, &hi_pattern);
        let even = unzip_even(&zipped, &zipped_hi);
        assert_eq!(even.to_array(), a.to_array());
    }

    #[test]
    fn shift_lanes_up_slides_window() {
        let cur = Vector::<i16, 8>::from_array([0, 1, 2, 3, 4, 5, 6, 7]);
        let nxt = Vector::<i16, 8>::from_array([8, 9, 10, 11, 12, 13, 14, 15]);
        let s = shift_lanes_up(&cur, &nxt, 3);
        assert_eq!(s.to_array(), [3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(shift_lanes_up(&cur, &nxt, 0).to_array(), cur.to_array());
        assert_eq!(shift_lanes_up(&cur, &nxt, 8).to_array(), nxt.to_array());
    }

    proptest! {
        /// bitonic_sort16 sorts every input and is a permutation of it.
        #[test]
        fn bitonic_sorts_everything(vals in proptest::array::uniform16(-1000i32..1000)) {
            let f: [f32; 16] = vals.map(|v| v as f32);
            let sorted = bitonic_sort16(Vector::from_array(f)).to_array();
            let mut expect = f;
            expect.sort_by(f32::total_cmp);
            prop_assert_eq!(sorted, expect);
        }

        /// Every bitonic stage output is a permutation of its input.
        #[test]
        fn stage_is_permutation(vals in proptest::array::uniform16(any::<i32>()),
                                stride_pow in 0usize..4) {
            let stride = 1usize << stride_pow;
            let v = Vector::<i32, 16>::from_array(vals);
            let ascending = [true; 16];
            let out = bitonic_stage(&v, stride, &ascending).to_array();
            let mut a = vals.to_vec();
            let mut b = out.to_vec();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }
}

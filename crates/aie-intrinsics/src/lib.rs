//! # aie-intrinsics — AIE vector API emulation
//!
//! The paper's cgsim does not emulate the AMD AIE intrinsics itself — it
//! imports AMD's x86 emulation headers from the Vitis `aietools` tree
//! (§3.9), which cannot be redistributed. This crate is the reproduction's
//! substitute: a functional emulation of the subset of the AIE vector API
//! and intrinsics used by the four evaluation graphs (bitonic sort, Farrow
//! filter, IIR filter, bilinear interpolation):
//!
//! * fixed-width SIMD [`vector::Vector`] types (`v8float`, `v16int16`, …),
//! * multiply-accumulate into wide [`acc`]umulators (`fpmac`, `mac16`,
//!   sliding FIR multiplies) with 48-bit saturation semantics,
//! * [`fixed`]-point conversion: `srs` (shift-round-saturate) and `ups`
//!   (upshift) in Q-format,
//! * lane [`ops`]: shuffle/select/min/max/compare as used by the bitonic
//!   network.
//!
//! Unlike AMD's headers, every operation also records itself in a
//! thread-local [`counter`]: the cycle-approximate simulator (`aie-sim`)
//! derives kernel compute cycles by packing these op counts into VLIW issue
//! slots, instead of hard-coding per-kernel cycle numbers.
//!
//! With the `simd` cargo feature the lane loops execute on real x86 vector
//! units: the [`simd`] module dispatches every op to runtime-detected
//! SSE2/AVX2 kernels that are bit-exact against the always-available scalar
//! fallback (same wrapping, same IEEE rounding, same saturation, same op
//! accounting) — see `tests/simd_equivalence.rs` for the proptest contract.

#![warn(missing_docs)]
// Lane loops index multiple arrays in lockstep; iterator rewrites obscure
// the lane semantics of the emulated SIMD ops.
#![allow(clippy::needless_range_loop)]

pub mod acc;
pub mod complex;
pub mod counter;
pub mod fixed;
pub mod ops;
pub mod simd;
pub mod vector;

pub use acc::{AccF32, AccI48};
pub use complex::{CAccI48, CInt16};
pub use counter::{reset_counts, snapshot_counts, OpCounts, OpKind};
pub use vector::Vector;

/// `v16float` — 16 × f32, the widest float vector on AIE1.
pub type V16f32 = Vector<f32, 16>;
/// `v8float` — 8 × f32, the native float MAC width on AIE1.
pub type V8f32 = Vector<f32, 8>;
/// `v4float` — 4 × f32.
pub type V4f32 = Vector<f32, 4>;
/// `v32int16` — 32 × i16.
pub type V32i16 = Vector<i16, 32>;
/// `v16int16` — 16 × i16, the native fixed-point MAC width.
pub type V16i16 = Vector<i16, 16>;
/// `v8int16` — 8 × i16.
pub type V8i16 = Vector<i16, 8>;
/// `v8cint16` — 8 × complex i16.
pub type V8c16 = Vector<complex::CInt16, 8>;
/// `v8int32` — 8 × i32.
pub type V8i32 = Vector<i32, 8>;
/// `v4int32` — 4 × i32.
pub type V4i32 = Vector<i32, 4>;

//! Wide accumulators and multiply-accumulate intrinsics.
//!
//! AIE1 fixed-point MACs accumulate `int16 × int16` products into 48-bit
//! accumulator lanes; floating-point MACs (`fpmac`) use ordinary f32
//! accumulation. [`AccI48`] emulates the 48-bit lane exactly (stored in
//! `i64`, saturated to 48 bits on readout via [`crate::fixed::srs`]), so
//! overflow behaviour of heavily-accumulating kernels (FIR/Farrow) matches
//! hardware.

use crate::counter::{record, OpKind};
use crate::vector::Vector;

/// Saturation bounds of a 48-bit accumulator lane.
pub const ACC48_MAX: i64 = (1 << 47) - 1;
/// Negative bound of a 48-bit accumulator lane.
pub const ACC48_MIN: i64 = -(1 << 47);

/// An `N`-lane 48-bit fixed-point accumulator (AIE `acc48`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccI48<const N: usize> {
    lanes: [i64; N],
}

impl<const N: usize> Default for AccI48<N> {
    fn default() -> Self {
        Self::zero()
    }
}

impl<const N: usize> AccI48<N> {
    /// The zero accumulator (AIE `null_v*acc48`).
    pub const fn zero() -> Self {
        AccI48 { lanes: [0; N] }
    }

    /// Raw lane values (full `i64` precision, pre-saturation).
    pub fn to_array(self) -> [i64; N] {
        self.lanes
    }

    /// Construct from raw lane values (e.g. when restoring state).
    pub const fn from_array(lanes: [i64; N]) -> Self {
        AccI48 { lanes }
    }

    /// Widen a narrow vector into accumulator precision scaled by
    /// `2^shift` — the vector form of the AIE `ups` intrinsic (the inverse
    /// of [`AccI48::srs`]).
    pub fn ups(v: Vector<i16, N>, shift: u32) -> Self {
        record(OpKind::VSrs); // ups shares the srs datapath
        let mut lanes = [0i64; N];
        crate::simd::ups_i16_to_i48(v.lanes_ref(), shift, &mut lanes);
        AccI48 { lanes }
    }

    /// `acc += a * b` lane-wise (AIE `mac16`-family). One VMAC issue.
    pub fn mac(mut self, a: Vector<i16, N>, b: Vector<i16, N>) -> Self {
        record(OpKind::VMac);
        crate::simd::mac_i48(&mut self.lanes, a.lanes_ref(), b.lanes_ref());
        self
    }

    /// `acc -= a * b` lane-wise (AIE `msc16`).
    pub fn msc(mut self, a: Vector<i16, N>, b: Vector<i16, N>) -> Self {
        record(OpKind::VMac);
        crate::simd::msc_i48(&mut self.lanes, a.lanes_ref(), b.lanes_ref());
        self
    }

    /// `acc = a * b` (AIE `mul16`): multiply overwriting the accumulator.
    pub fn mul(a: Vector<i16, N>, b: Vector<i16, N>) -> Self {
        record(OpKind::VMac);
        // MAC into a zero accumulator — identical to a plain product.
        let mut lanes = [0i64; N];
        crate::simd::mac_i48(&mut lanes, a.lanes_ref(), b.lanes_ref());
        AccI48 { lanes }
    }

    /// Sliding multiply-accumulate (the AIE `sliding_mul` / `mac` with
    /// shifted data register selection used by FIR kernels): output lane `i`
    /// accumulates `data[i + tap] * coeff`, i.e. one scalar coefficient
    /// against a sliding window of data lanes.
    ///
    /// `data` must provide `N + tap` valid lanes.
    pub fn sliding_mac(mut self, data: &[i16], tap: usize, coeff: i16) -> Self {
        record(OpKind::VMac);
        assert!(
            data.len() >= N + tap,
            "sliding_mac needs {} data lanes, got {}",
            N + tap,
            data.len()
        );
        crate::simd::mac_coeff_i48(&mut self.lanes, &data[tap..], coeff);
        self
    }

    /// Lane-wise add of two accumulators (named after the AIE intrinsic,
    /// deliberately not `std::ops::Add`: it issues a vector-ALU op).
    #[allow(clippy::should_implement_trait)]
    pub fn add(mut self, other: Self) -> Self {
        record(OpKind::VAlu);
        crate::simd::add_i64(&mut self.lanes, &other.lanes);
        self
    }

    /// Shift-round-saturate the accumulator down to `i16` lanes — the AIE
    /// `srs` datapath op. `shift` is the Q-format scaling (result =
    /// `round(acc / 2^shift)` saturated to i16).
    pub fn srs(self, shift: u32) -> Vector<i16, N> {
        record(OpKind::VSrs);
        let mut out = [0i16; N];
        crate::simd::srs_i48_to_i16(&self.lanes, shift, &mut out);
        Vector::from_array(out)
    }

    /// Shift-round-saturate to `i32` lanes (AIE `lsrs`).
    pub fn srs32(self, shift: u32) -> Vector<i32, N> {
        record(OpKind::VSrs);
        let mut out = [0i32; N];
        crate::simd::srs_i48_to_i32(&self.lanes, shift, &mut out);
        Vector::from_array(out)
    }
}

/// An `N`-lane f32 accumulator (the AIE floating-point datapath has no extra
/// accumulator width; `fpmac` rounds per step like hardware).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AccF32<const N: usize> {
    lanes: [f32; N],
}

impl<const N: usize> Default for AccF32<N> {
    fn default() -> Self {
        Self::zero()
    }
}

impl<const N: usize> AccF32<N> {
    /// The zero accumulator.
    pub const fn zero() -> Self {
        AccF32 { lanes: [0.0; N] }
    }

    /// Start from an existing vector (AIE `ups` of a float vector is a move).
    pub fn from_vector(v: Vector<f32, N>) -> Self {
        AccF32 {
            lanes: v.to_array(),
        }
    }

    /// `acc += a * b` lane-wise (AIE `fpmac`). One VMAC issue.
    pub fn fpmac(mut self, a: Vector<f32, N>, b: Vector<f32, N>) -> Self {
        record(OpKind::VMac);
        crate::simd::fpmac_f32(&mut self.lanes, a.lanes_ref(), b.lanes_ref());
        self
    }

    /// `acc -= a * b` lane-wise (AIE `fpmsc`).
    pub fn fpmsc(mut self, a: Vector<f32, N>, b: Vector<f32, N>) -> Self {
        record(OpKind::VMac);
        crate::simd::fpmsc_f32(&mut self.lanes, a.lanes_ref(), b.lanes_ref());
        self
    }

    /// `acc += data[i+tap] * coeff` — float sliding MAC (vectorised FIR).
    pub fn sliding_fpmac(mut self, data: &[f32], tap: usize, coeff: f32) -> Self {
        record(OpKind::VMac);
        assert!(
            data.len() >= N + tap,
            "sliding_fpmac needs {} data lanes, got {}",
            N + tap,
            data.len()
        );
        crate::simd::fpmac_coeff_f32(&mut self.lanes, &data[tap..], coeff);
        self
    }

    /// Read out the accumulator as a plain vector (register move).
    pub fn to_vector(self) -> Vector<f32, N> {
        Vector::from_array(self.lanes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mac_accumulates_products() {
        let a = Vector::<i16, 4>::from_array([1, 2, 3, 4]);
        let b = Vector::<i16, 4>::from_array([10, 10, 10, 10]);
        let acc = AccI48::zero().mac(a, b).mac(a, b);
        assert_eq!(acc.to_array(), [20, 40, 60, 80]);
    }

    #[test]
    fn msc_subtracts_products() {
        let a = Vector::<i16, 4>::splat(3);
        let b = Vector::<i16, 4>::splat(5);
        let acc = AccI48::mul(a, b).msc(a, b);
        assert_eq!(acc.to_array(), [0; 4]);
    }

    #[test]
    fn accumulator_holds_beyond_16_bits() {
        // i16::MAX^2 ≈ 2^30 per step; 2^17 steps would saturate 48 bits, but
        // a few thousand must be exact.
        let a = Vector::<i16, 2>::splat(i16::MAX);
        let mut acc = AccI48::<2>::zero();
        for _ in 0..1000 {
            acc = acc.mac(a, a);
        }
        let expect = (i16::MAX as i64) * (i16::MAX as i64) * 1000;
        assert_eq!(acc.to_array(), [expect; 2]);
        assert!(expect > i32::MAX as i64);
    }

    #[test]
    fn sliding_mac_windows_data() {
        let data: Vec<i16> = (0..12).collect();
        let acc = AccI48::<8>::zero().sliding_mac(&data, 2, 3);
        let expect: Vec<i64> = (0..8).map(|i| (i as i64 + 2) * 3).collect();
        assert_eq!(acc.to_array().to_vec(), expect);
    }

    #[test]
    #[should_panic(expected = "sliding_mac needs")]
    fn sliding_mac_checks_window() {
        let data = [0i16; 8];
        let _ = AccI48::<8>::zero().sliding_mac(&data, 2, 1);
    }

    #[test]
    fn ups_then_srs_roundtrips_vectors() {
        let v = Vector::<i16, 8>::from_array([-32768, -1, 0, 1, 2, 100, 30000, 32767]);
        let acc = AccI48::ups(v, 12);
        assert_eq!(acc.srs(12).to_array(), v.to_array());
        // The widened lanes really are scaled.
        assert_eq!(acc.to_array()[5], 100 << 12);
    }

    #[test]
    fn srs_readout_matches_fixed_point() {
        let a = Vector::<i16, 4>::from_array([100, -100, 1, 0]);
        let b = Vector::<i16, 4>::splat(1 << 8); // ×256
        let acc = AccI48::mul(a, b);
        let out = acc.srs(8); // /256 → back to original
        assert_eq!(out.to_array(), [100, -100, 1, 0]);
    }

    #[test]
    fn fpmac_matches_scalar() {
        let a = Vector::<f32, 8>::from_array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let b = Vector::<f32, 8>::splat(0.5);
        let acc = AccF32::zero().fpmac(a, b).fpmac(a, b);
        let expect: [f32; 8] = std::array::from_fn(|i| i as f32 + 1.0);
        assert_eq!(acc.to_vector().to_array(), expect);
    }

    #[test]
    fn fpmsc_inverts_fpmac() {
        let a = Vector::<f32, 4>::from_array([1.5, -2.5, 3.25, 0.0]);
        let b = Vector::<f32, 4>::from_array([2.0, 4.0, -1.0, 9.0]);
        let acc = AccF32::zero().fpmac(a, b).fpmsc(a, b);
        assert_eq!(acc.to_vector().to_array(), [0.0; 4]);
    }

    proptest! {
        /// Integer MAC matches the scalar wide computation exactly.
        #[test]
        fn mac_matches_scalar(
            a in proptest::array::uniform8(any::<i16>()),
            b in proptest::array::uniform8(any::<i16>()),
            c in proptest::array::uniform8(any::<i16>()),
            d in proptest::array::uniform8(any::<i16>()),
        ) {
            let acc = AccI48::<8>::zero()
                .mac(Vector::from_array(a), Vector::from_array(b))
                .mac(Vector::from_array(c), Vector::from_array(d));
            for i in 0..8 {
                let expect = (a[i] as i64) * (b[i] as i64) + (c[i] as i64) * (d[i] as i64);
                prop_assert_eq!(acc.to_array()[i], expect);
            }
        }

        /// sliding_mac over all taps equals a scalar dot product.
        #[test]
        fn sliding_mac_is_convolution(
            data in proptest::collection::vec(-1000i16..1000, 16),
            coeffs in proptest::collection::vec(-100i16..100, 4),
        ) {
            let mut acc = AccI48::<8>::zero();
            for (tap, &c) in coeffs.iter().enumerate() {
                acc = acc.sliding_mac(&data, tap, c);
            }
            for lane in 0..8 {
                let expect: i64 = coeffs
                    .iter()
                    .enumerate()
                    .map(|(tap, &c)| (data[lane + tap] as i64) * (c as i64))
                    .sum();
                prop_assert_eq!(acc.to_array()[lane], expect);
            }
        }
    }
}

//! Scalar-vs-SIMD bit-identity: every dispatched kernel must produce the
//! same bits on every available tier (scalar / SSE2 / AVX2), over
//! full-range inputs — including i16 extremes, f32 NaN payloads and ±0 —
//! and must record the same op counts.
//!
//! Without the `simd` feature only the scalar tier exists and these tests
//! reduce to self-consistency; the CI matrix runs them with the feature on
//! under AVX2, SSE2-clamped (`CGSIM_SIMD=sse2`) and scalar-clamped
//! environments.

use aie_intrinsics::counter::metered;
use aie_intrinsics::ops::bitonic_sort16;
use aie_intrinsics::simd::{self, Tier};
use aie_intrinsics::{AccF32, AccI48, CAccI48, CInt16, Vector};
use proptest::prelude::*;

/// Tiers to sweep: scalar first (the oracle), then whatever the build,
/// CPU and `CGSIM_SIMD` clamp allow.
fn tiers() -> Vec<Tier> {
    let t = simd::available_tiers();
    assert_eq!(t[0], Tier::Scalar);
    t
}

/// Run `f` on every tier and assert all results equal the scalar one.
fn assert_tier_identical<R: PartialEq + std::fmt::Debug>(f: impl Fn() -> R) {
    let reference = simd::with_tier(Tier::Scalar, &f).unwrap();
    for tier in tiers() {
        let got = simd::with_tier(tier, &f).unwrap();
        assert_eq!(got, reference, "tier {tier} diverges from scalar");
    }
}

/// f32 slices compared as bit patterns (NaN payloads, ±0 included).
fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Bit patterns with NaNs collapsed to one canonical quiet NaN.
///
/// For *arithmetic* (add/sub/mul/fpmac) the NaN payload that survives a
/// two-NaN operation follows hardware operand order, and LLVM freely
/// commutes scalar `fadd`/`fmul` operands — so payload identity is not
/// achievable even between two scalar builds. The contract is therefore:
/// bit-identical everywhere, except arithmetic NaN results only promise
/// "is a NaN". Selection ops (min/max/select/permute) and sign ops (neg)
/// never launder payloads and are compared with raw [`bits`].
fn canon_bits(v: &[f32]) -> Vec<u32> {
    v.iter()
        .map(|x| if x.is_nan() { 0x7fc0_0000 } else { x.to_bits() })
        .collect()
}

proptest! {
    #[test]
    fn binary_i16_ops(pairs in proptest::collection::vec((any::<i16>(), any::<i16>()), 0..80)) {
        let a: Vec<i16> = pairs.iter().map(|p| p.0).collect();
        let b: Vec<i16> = pairs.iter().map(|p| p.1).collect();
        for op in [simd::add_i16, simd::sub_i16, simd::min_i16, simd::max_i16] {
            assert_tier_identical(|| {
                let mut out = vec![0i16; a.len()];
                op(&a, &b, &mut out);
                out
            });
        }
    }

    #[test]
    fn binary_i32_ops(pairs in proptest::collection::vec((any::<i32>(), any::<i32>()), 0..80)) {
        let a: Vec<i32> = pairs.iter().map(|p| p.0).collect();
        let b: Vec<i32> = pairs.iter().map(|p| p.1).collect();
        for op in [simd::add_i32, simd::sub_i32, simd::min_i32, simd::max_i32] {
            assert_tier_identical(|| {
                let mut out = vec![0i32; a.len()];
                op(&a, &b, &mut out);
                out
            });
        }
    }

    /// f32 binaries over raw bit patterns: NaNs, infinities, subnormals
    /// and signed zeros all flow through min/max/arithmetic.
    #[test]
    fn binary_f32_ops(pairs in proptest::collection::vec((any::<f32>(), any::<f32>()), 0..80)) {
        let a: Vec<f32> = pairs.iter().map(|p| p.0).collect();
        let b: Vec<f32> = pairs.iter().map(|p| p.1).collect();
        for op in [simd::add_f32, simd::sub_f32, simd::mul_f32] {
            assert_tier_identical(|| {
                let mut out = vec![0.0f32; a.len()];
                op(&a, &b, &mut out);
                canon_bits(&out)
            });
        }
        for op in [simd::min_f32, simd::max_f32] {
            assert_tier_identical(|| {
                let mut out = vec![0.0f32; a.len()];
                op(&a, &b, &mut out);
                bits(&out)
            });
        }
        assert_tier_identical(|| {
            let mut out = vec![0.0f32; a.len()];
            simd::neg_f32(&a, &mut out);
            bits(&out)
        });
    }

    /// min/max tie lanes must keep the first operand's bit pattern
    /// (distinguishes 0.0 from -0.0 and NaN payloads from each other).
    #[test]
    fn min_max_ties_keep_first_operand(n in 0usize..80, flip in any::<bool>()) {
        let nan_a = f32::from_bits(0x7fc0_0001);
        let nan_b = f32::from_bits(0xffc0_0002);
        let (za, zb) = if flip { (0.0f32, -0.0f32) } else { (-0.0f32, 0.0f32) };
        let a: Vec<f32> = (0..n).map(|i| if i % 2 == 0 { za } else { nan_a }).collect();
        let b: Vec<f32> = (0..n).map(|i| if i % 2 == 0 { zb } else { nan_b }).collect();
        for op in [simd::min_f32, simd::max_f32] {
            assert_tier_identical(|| {
                let mut out = vec![0.0f32; n];
                op(&a, &b, &mut out);
                bits(&out)
            });
            // The scalar contract: tie/NaN keeps `a`.
            let mut out = vec![0.0f32; n];
            op(&a, &b, &mut out);
            prop_assert_eq!(bits(&out), bits(&a));
        }
    }

    #[test]
    fn select_ops(items in proptest::collection::vec((any::<i16>(), any::<i16>(), any::<bool>()), 0..80)) {
        let a16: Vec<i16> = items.iter().map(|p| p.0).collect();
        let b16: Vec<i16> = items.iter().map(|p| p.1).collect();
        let mask: Vec<bool> = items.iter().map(|p| p.2).collect();
        assert_tier_identical(|| {
            let mut out = vec![0i16; a16.len()];
            simd::select_i16(&a16, &b16, &mask, &mut out);
            out
        });
        let a32: Vec<i32> = a16.iter().map(|&v| v as i32).collect();
        let b32: Vec<i32> = b16.iter().map(|&v| v as i32).collect();
        assert_tier_identical(|| {
            let mut out = vec![0i32; a32.len()];
            simd::select_i32(&a32, &b32, &mask, &mut out);
            out
        });
        let af: Vec<f32> = a16.iter().map(|&v| f32::from_bits((v as u16 as u32) << 16)).collect();
        let bf: Vec<f32> = b16.iter().map(|&v| f32::from_bits(v as u16 as u32)).collect();
        assert_tier_identical(|| {
            let mut out = vec![0.0f32; af.len()];
            simd::select_f32(&af, &bf, &mask, &mut out);
            bits(&out)
        });
    }

    /// Dynamic permute at the widths the kernels use (8/16) and an odd
    /// width that exercises the scalar fallback.
    #[test]
    fn permute_f32_all_widths(vals in proptest::array::uniform16(any::<f32>()),
                              idx in proptest::array::uniform16(0usize..16)) {
        for n in [5usize, 8, 16] {
            let src = &vals[..n];
            let pattern: Vec<usize> = idx[..n].iter().map(|&p| p % n).collect();
            assert_tier_identical(|| {
                let mut out = vec![0.0f32; n];
                simd::permute_f32(src, &pattern, &mut out);
                bits(&out)
            });
        }
    }

    /// Integer MAC family over full-range i16 (including (-32768)² lanes)
    /// with accumulators pre-loaded anywhere in the 48-bit range.
    #[test]
    fn mac_family_i48(items in proptest::collection::vec(
        (any::<i16>(), any::<i16>(), (-(1i64 << 47))..(1i64 << 47)), 0..80),
        coeff in any::<i16>())
    {
        let a: Vec<i16> = items.iter().map(|p| p.0).collect();
        let b: Vec<i16> = items.iter().map(|p| p.1).collect();
        let acc0: Vec<i64> = items.iter().map(|p| p.2).collect();
        for op in [simd::mac_i48, simd::msc_i48] {
            assert_tier_identical(|| {
                let mut acc = acc0.clone();
                op(&mut acc, &a, &b);
                acc
            });
        }
        assert_tier_identical(|| {
            let mut acc = acc0.clone();
            simd::mac_coeff_i48(&mut acc, &a, coeff);
            acc
        });
        assert_tier_identical(|| {
            let mut acc = acc0.clone();
            let other: Vec<i64> = acc0.iter().map(|v| v.wrapping_neg()).collect();
            simd::add_i64(&mut acc, &other);
            acc
        });
    }

    /// Float MAC family over raw bit patterns; must never contract to FMA.
    #[test]
    fn fpmac_family(items in proptest::collection::vec(
        (any::<f32>(), any::<f32>(), any::<f32>()), 0..80), coeff in any::<f32>())
    {
        let a: Vec<f32> = items.iter().map(|p| p.0).collect();
        let b: Vec<f32> = items.iter().map(|p| p.1).collect();
        let acc0: Vec<f32> = items.iter().map(|p| p.2).collect();
        for op in [simd::fpmac_f32, simd::fpmsc_f32] {
            assert_tier_identical(|| {
                let mut acc = acc0.clone();
                op(&mut acc, &a, &b);
                canon_bits(&acc)
            });
        }
        assert_tier_identical(|| {
            let mut acc = acc0.clone();
            simd::fpmac_coeff_f32(&mut acc, &a, coeff);
            canon_bits(&acc)
        });
    }

    /// srs/ups across the full accumulator range and the kernel shift
    /// domain, hitting both saturation edges and the round-up carry.
    #[test]
    fn srs_ups_readout(acc in proptest::collection::vec(any::<i64>(), 0..80),
                       narrow in proptest::collection::vec(any::<i16>(), 0..80),
                       shift in 0u32..48)
    {
        assert_tier_identical(|| {
            let mut out = vec![0i16; acc.len()];
            simd::srs_i48_to_i16(&acc, shift, &mut out);
            out
        });
        assert_tier_identical(|| {
            let mut out = vec![0i32; acc.len()];
            simd::srs_i48_to_i32(&acc, shift, &mut out);
            out
        });
        assert_tier_identical(|| {
            let mut out = vec![0i64; narrow.len()];
            simd::ups_i16_to_i48(&narrow, shift, &mut out);
            out
        });
    }

    /// Complex MAC family over full-range components (the (-32768)² corner
    /// is exactly the case that rules out `pmaddwd`).
    #[test]
    fn cmac_family(items in proptest::collection::vec(
        (any::<i16>(), any::<i16>(), any::<i16>(), any::<i16>(),
         (-(1i64 << 47))..(1i64 << 47), (-(1i64 << 47))..(1i64 << 47)), 0..40))
    {
        let a: Vec<i16> = items.iter().flat_map(|p| [p.0, p.1]).collect();
        let b: Vec<i16> = items.iter().flat_map(|p| [p.2, p.3]).collect();
        let acc0: Vec<i64> = items.iter().flat_map(|p| [p.4, p.5]).collect();
        for op in [simd::cmac_c16, simd::cmac_conj_c16] {
            assert_tier_identical(|| {
                let mut acc = acc0.clone();
                op(&mut acc, &a, &b);
                acc
            });
        }
        assert_tier_identical(|| {
            let mut out = vec![0i64; items.len()];
            simd::cmag_sq_c16(&a, &mut out);
            out
        });
    }

    /// Whole emulated-intrinsic chains through the `Vector` API: a
    /// farrow-style fixed-point MAC pipeline is bit-identical and records
    /// identical op counts on every tier.
    #[test]
    fn vector_api_fixed_chain(data in proptest::collection::vec(any::<i16>(), 20),
                              coeffs in proptest::array::uniform4(any::<i16>()),
                              shift in 0u32..20)
    {
        assert_tier_identical(|| {
            let (out, counts) = metered(|| {
                let mut acc = AccI48::<16>::zero();
                for (tap, &c) in coeffs.iter().enumerate() {
                    acc = acc.sliding_mac(&data, tap, c);
                }
                let v = acc.srs(shift);
                let w = Vector::<i16, 16>::load(&data[..16]);
                ((v + w) - w).to_array()
            });
            (out, counts)
        });
    }

    /// Float pipeline (bilinear/iir style): fpmac + vector arithmetic +
    /// min/max/select, bit-identical with identical accounting.
    #[test]
    fn vector_api_float_chain(vals in proptest::array::uniform16(any::<f32>())) {
        assert_tier_identical(|| {
            let (out, counts) = metered(|| {
                let a = Vector::<f32, 8>::load(&vals[..8]);
                let b = Vector::<f32, 8>::load(&vals[8..]);
                let acc = AccF32::zero().fpmac(a, b).fpmsc(b, a).to_vector();
                let m = a.lt(&b);
                let sel = acc.select(&(a * b), &m);
                let r = (sel + a.min(&b)) - (-a.max(&b));
                canon_bits(&r.to_array())
            });
            (out, counts)
        });
    }

    /// The bitonic network (shuffle/min/max/select composition) sorts
    /// bit-identically on every tier.
    #[test]
    fn bitonic_network_identical(vals in proptest::array::uniform16(any::<f32>())) {
        // Use total-order comparable values only when NaNs are absent;
        // with NaNs the network output is still deterministic, so compare
        // bits across tiers either way.
        assert_tier_identical(|| {
            bits(&bitonic_sort16(Vector::from_array(vals)).to_array())
        });
    }

    /// Complex accumulator API parity (cmac/cmac_conj/srs).
    #[test]
    fn complex_api_chain(items in proptest::array::uniform8((any::<i16>(), any::<i16>())),
                         shift in 0u32..20)
    {
        let z: [CInt16; 8] = items.map(|(re, im)| CInt16::new(re, im));
        assert_tier_identical(|| {
            let v = Vector::<CInt16, 8>::from_array(z);
            let acc = CAccI48::zero().cmac(v, v).cmac_conj(v, v);
            let out = acc.srs(shift);
            (acc.to_array().map(|l| (l.re, l.im)), out.to_array())
        });
    }
}

#[test]
fn sse2_and_avx2_available_with_feature() {
    // On the x86_64 CI hosts the simd build must actually exercise a
    // vector tier unless the environment clamps it away.
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        assert!(simd::capability() >= Tier::Sse2);
        if std::env::var("CGSIM_SIMD").is_err() {
            assert!(simd::default_tier() >= Tier::Sse2);
        }
    }
    #[cfg(not(feature = "simd"))]
    assert_eq!(simd::capability(), Tier::Scalar);
}

//! 48-bit accumulator saturation boundaries, checked on every SIMD tier.
//!
//! The AIE `acc48` register holds 48 signed bits; the emulation stores the
//! lanes in `i64` and only clamps at `srs` readout. These tests pin the
//! behaviour at the ±2^47 boundary — MAC chains that cross it, the
//! round-then-saturate interplay where rounding alone pushes a value over
//! the edge — and assert the scalar and SIMD paths agree lane-for-lane.

use aie_intrinsics::simd::{self, Tier};
use aie_intrinsics::{AccI48, Vector};

/// The largest/smallest values representable in 48 signed bits.
const ACC48_MAX: i64 = (1i64 << 47) - 1;
const ACC48_MIN: i64 = -(1i64 << 47);

/// Run `f` under every available tier and assert identical results.
fn on_all_tiers<R: PartialEq + std::fmt::Debug>(f: impl Fn() -> R) {
    let reference = simd::with_tier(Tier::Scalar, &f).unwrap();
    for tier in simd::available_tiers() {
        let got = simd::with_tier(tier, &f).unwrap();
        assert_eq!(got, reference, "tier {tier} diverges at saturation edge");
    }
}

/// A MAC chain that walks the accumulator past +2^47: each step adds
/// 32767·32767 ≈ 2^30, so ~2^17 steps cross the boundary. The emulation
/// (like a chain of AIE MACs with lazy saturation) keeps full i64
/// precision in flight; readout is where the clamp happens.
#[test]
fn mac_chain_crossing_pos_2_47() {
    on_all_tiers(|| {
        let top = Vector::<i16, 16>::from_array([i16::MAX; 16]);
        // Start one MAC short of the boundary.
        let start = ACC48_MAX - (i16::MAX as i64 * i16::MAX as i64) / 2;
        let mut acc = AccI48::<16>::from_array([start; 16]);
        for _ in 0..4 {
            acc = acc.mac(top, top);
        }
        let lanes = acc.to_array();
        // In-flight value really is past the 48-bit range...
        assert!(lanes[0] > ACC48_MAX);
        // ...and every readout shift still saturates at the narrow type's
        // positive rail.
        (
            lanes,
            acc.srs(0).to_array(),
            acc.srs(16).to_array(),
            acc.srs32(15).to_array(),
        )
    });
}

#[test]
fn mac_chain_crossing_neg_2_47() {
    on_all_tiers(|| {
        let top = Vector::<i16, 16>::from_array([i16::MAX; 16]);
        let bottom = Vector::<i16, 16>::from_array([i16::MIN; 16]);
        let start = ACC48_MIN + (i16::MAX as i64 * i16::MAX as i64) / 2;
        let mut acc = AccI48::<16>::from_array([start; 16]);
        for _ in 0..4 {
            // (+32767)·(−32768) per lane: the most negative i16×i16 product.
            acc = acc.mac(top, bottom);
        }
        let lanes = acc.to_array();
        assert!(lanes[0] < ACC48_MIN);
        (
            lanes,
            acc.srs(0).to_array(),
            acc.srs(16).to_array(),
            acc.srs32(15).to_array(),
        )
    });
}

/// msc walking down across −2^47 mirrors the mac chain up.
#[test]
fn msc_chain_crossing_neg_2_47() {
    on_all_tiers(|| {
        let top = Vector::<i16, 16>::from_array([i16::MAX; 16]);
        let start = ACC48_MIN + (i16::MAX as i64 * i16::MAX as i64) / 2;
        let mut acc = AccI48::<16>::from_array([start; 16]);
        for _ in 0..4 {
            acc = acc.msc(top, top);
        }
        (
            acc.to_array(),
            acc.srs(14).to_array(),
            acc.srs32(14).to_array(),
        )
    });
}

/// Round/saturate interplay: values just below the saturation edge where
/// the round-half-up *bias alone* pushes them across. `32767.5` must round
/// to 32768 and then clamp back to 32767; `−32768.5` rounds to −32768
/// (round-half-up, not half-away-from-zero) and must NOT clamp.
#[test]
fn srs_rounding_pushes_across_saturation_edge() {
    for shift in [1u32, 4, 15, 31, 40] {
        on_all_tiers(|| {
            let half = 1i64 << (shift - 1);
            let lanes: [i64; 16] = [
                // +edge: exactly 32767.5 → rounds up → saturates.
                (32767i64 << shift) + half,
                // one below the tipping point: stays 32767.
                (32767i64 << shift) + half - 1,
                // −edge: −32768.5 rounds *up* to −32768 → in range.
                (-32768i64 << shift) - half,
                // one further: −32768.5 − ε rounds to −32769 → saturates.
                (-32768i64 << shift) - half - 1,
                // i32 rails for srs32.
                ((i32::MAX as i64) << shift.min(15)) + half,
                ((i32::MIN as i64) << shift.min(15)) - half - 1,
                // deep past both rails.
                ACC48_MAX,
                ACC48_MIN,
                // around zero: ±0.5 rounding.
                half,
                half - 1,
                -half,
                -half - 1,
                // arbitrary mid-range values.
                0x1234_5678_9abc,
                -0x1234_5678_9abc,
                1,
                -1,
            ];
            let acc = AccI48::<16>::from_array(lanes);
            (acc.srs(shift).to_array(), acc.srs32(shift).to_array())
        });
    }
}

/// Pin the tipping-point lanes to their exact expected values (not just
/// tier agreement): the emulation must round half *up* then clamp.
#[test]
fn srs_edge_values_are_exact() {
    let shift = 4u32;
    let half = 1i64 << (shift - 1);
    let acc = AccI48::<4>::from_array([
        (32767i64 << shift) + half,      // 32767.5 → 32768 → clamp 32767
        (32767i64 << shift) + half - 1,  // 32767.4375 → 32767
        (-32768i64 << shift) - half,     // −32768.5 → −32768 (no clamp)
        (-32768i64 << shift) - half - 1, // −32768.5625 → −32769 → clamp −32768
    ]);
    for tier in simd::available_tiers() {
        let out = simd::with_tier(tier, || acc.srs(shift).to_array()).unwrap();
        assert_eq!(out, [32767, 32767, -32768, -32768], "tier {tier}");
    }
}

/// srs with shift 0 is a pure saturation pass; the boundary lanes clamp
/// and everything in range passes through untouched.
#[test]
fn srs_shift_zero_is_pure_saturation() {
    let acc = AccI48::<8>::from_array([
        ACC48_MAX,
        ACC48_MIN,
        i16::MAX as i64,
        i16::MIN as i64,
        i16::MAX as i64 + 1,
        i16::MIN as i64 - 1,
        0,
        -1,
    ]);
    for tier in simd::available_tiers() {
        let out = simd::with_tier(tier, || acc.srs(0).to_array()).unwrap();
        assert_eq!(
            out,
            [32767, -32768, 32767, -32768, 32767, -32768, 0, -1],
            "tier {tier}"
        );
    }
}

/// ups at the maximum kernel shift parks ±full-scale exactly at the
/// 48-bit boundary neighbourhood, and a following srs round-trips.
#[test]
fn ups_to_boundary_round_trips_through_srs() {
    for shift in [0u32, 1, 15, 31, 32] {
        on_all_tiers(|| {
            let v = Vector::<i16, 16>::from_array([
                i16::MAX,
                i16::MIN,
                1,
                -1,
                0,
                255,
                -256,
                12345,
                -12345,
                i16::MAX,
                i16::MIN,
                2,
                -2,
                100,
                -100,
                0,
            ]);
            let acc = AccI48::ups(v, shift);
            // ups then srs by the same shift is the identity on every lane
            // (round bias < 2^shift cannot move an exact multiple).
            let back = acc.srs(shift);
            (acc.to_array(), back.to_array())
        });
    }
    // i16::MIN << 32 = −2^47: ups can reach exactly the 48-bit rail.
    let acc = AccI48::<1>::ups(Vector::from_array([i16::MIN]), 32);
    assert_eq!(acc.to_array()[0], ACC48_MIN);
}

/// The complex accumulator saturates its re/im components independently.
#[test]
fn complex_srs_saturates_components_independently() {
    use aie_intrinsics::{CAccI48, CInt16, Vector as V};
    on_all_tiers(|| {
        let big = V::<CInt16, 4>::from_array([CInt16::new(i16::MIN, i16::MIN); 4]);
        // (min,min)·(min,min): re = min²−min² = 0... use conj to get
        // re = min²+min² = 2^31 (crosses i16 after srs), im = 0.
        let mut acc = CAccI48::zero();
        for _ in 0..4 {
            acc = acc.cmac_conj(big, big);
        }
        let lanes = acc.to_array().map(|l| (l.re, l.im));
        let out = acc.srs(2).to_array().map(|c| (c.re, c.im));
        (lanes, out)
    });
}

//! Map a [`LintReport`] onto a [`DotStyle`] so the Graphviz export doubles
//! as a visual lint report: red for Error findings, orange for Warn, and
//! (via [`bounds_labels`]) static `CG06x` occupancy/capacity bounds as
//! extra edge-label lines.

use crate::diag::{Anchor, LintReport, Severity};
use cgsim_core::DotStyle;

/// Colours for [`dot_style`].
const ERROR_COLOR: &str = "red";
const WARN_COLOR: &str = "orange";

/// Build Graphviz colour overrides from a lint report. Error beats Warn
/// when one element carries both; Info findings are not coloured.
pub fn dot_style(report: &LintReport) -> DotStyle {
    let mut style = DotStyle::default();
    let paint = |slot: &mut std::collections::HashMap<usize, String>, idx: usize, sev| {
        let color = match sev {
            Severity::Error => ERROR_COLOR,
            Severity::Warn => WARN_COLOR,
            Severity::Info => return,
        };
        let entry = slot.entry(idx).or_insert_with(|| color.to_owned());
        if sev == Severity::Error {
            *entry = color.to_owned();
        }
    };
    for d in &report.diagnostics {
        match d.anchor {
            Anchor::Kernel { kernel } => paint(&mut style.kernel_fill, kernel.index(), d.severity),
            Anchor::Port { kernel, .. } => {
                paint(&mut style.kernel_fill, kernel.index(), d.severity)
            }
            Anchor::Connector { connector } => {
                paint(&mut style.connector_color, connector.index(), d.severity)
            }
            Anchor::Graph => {}
        }
    }
    style
}

/// Annotate every connector edge with its static bounds (`≤cap`,
/// tokens/period, minimal capacity) when the report carries them; merge
/// into `style` so colour overrides and bounds annotations compose.
pub fn bounds_labels(report: &LintReport, style: &mut DotStyle) {
    let Some(bounds) = report.bounds() else {
        return;
    };
    for (ci, b) in bounds.connectors.iter().enumerate() {
        style.connector_label.insert(
            ci,
            format!(
                "occ ≤ {}, {}/period, min cap {}",
                b.effective_capacity, b.period_tokens, b.min_capacity
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Diagnostic;
    use cgsim_core::{ConnectorId, KernelId};

    #[test]
    fn error_beats_warn_and_info_is_ignored() {
        let mut r = LintReport::new("g");
        let k = KernelId::new(0);
        r.push(Diagnostic::new(
            "CG021",
            Severity::Warn,
            Anchor::Kernel { kernel: k },
            "w",
        ));
        r.push(Diagnostic::new(
            "CG020",
            Severity::Error,
            Anchor::Kernel { kernel: k },
            "e",
        ));
        r.push(Diagnostic::new(
            "CG043",
            Severity::Warn,
            Anchor::Connector {
                connector: ConnectorId::new(2),
            },
            "m",
        ));
        r.push(Diagnostic::new(
            "CG000",
            Severity::Info,
            Anchor::Connector {
                connector: ConnectorId::new(3),
            },
            "i",
        ));
        let s = dot_style(&r);
        assert_eq!(s.kernel_fill[&0], "red");
        assert_eq!(s.connector_color[&2], "orange");
        assert!(!s.connector_color.contains_key(&3));
    }

    #[test]
    fn bounds_annotate_connector_labels() {
        use cgsim_core::{ConnectorBounds, GraphBounds, Rational};
        let mut r = LintReport::new("g");
        let mut s = DotStyle::default();
        bounds_labels(&r, &mut s);
        assert!(s.connector_label.is_empty());
        r.bounds = Some(GraphBounds {
            connectors: vec![ConnectorBounds {
                period_tokens: 2,
                min_capacity: 1,
                effective_capacity: 64,
            }],
            period_firings: 2,
            critical_path_firings: 2,
            throughput: Rational::ONE,
        });
        bounds_labels(&r, &mut s);
        assert_eq!(s.connector_label[&0], "occ ≤ 64, 2/period, min cap 1");
    }
}

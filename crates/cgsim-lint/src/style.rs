//! Map a [`LintReport`] onto a [`DotStyle`] so the Graphviz export doubles
//! as a visual lint report: red for Error findings, orange for Warn.

use crate::diag::{Anchor, LintReport, Severity};
use cgsim_core::DotStyle;

/// Colours for [`dot_style`].
const ERROR_COLOR: &str = "red";
const WARN_COLOR: &str = "orange";

/// Build Graphviz colour overrides from a lint report. Error beats Warn
/// when one element carries both; Info findings are not coloured.
pub fn dot_style(report: &LintReport) -> DotStyle {
    let mut style = DotStyle::default();
    let paint = |slot: &mut std::collections::HashMap<usize, String>, idx: usize, sev| {
        let color = match sev {
            Severity::Error => ERROR_COLOR,
            Severity::Warn => WARN_COLOR,
            Severity::Info => return,
        };
        let entry = slot.entry(idx).or_insert_with(|| color.to_owned());
        if sev == Severity::Error {
            *entry = color.to_owned();
        }
    };
    for d in &report.diagnostics {
        match d.anchor {
            Anchor::Kernel { kernel } => paint(&mut style.kernel_fill, kernel.index(), d.severity),
            Anchor::Port { kernel, .. } => {
                paint(&mut style.kernel_fill, kernel.index(), d.severity)
            }
            Anchor::Connector { connector } => {
                paint(&mut style.connector_color, connector.index(), d.severity)
            }
            Anchor::Graph => {}
        }
    }
    style
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Diagnostic;
    use cgsim_core::{ConnectorId, KernelId};

    #[test]
    fn error_beats_warn_and_info_is_ignored() {
        let mut r = LintReport::new("g");
        let k = KernelId::new(0);
        r.push(Diagnostic::new(
            "CG021",
            Severity::Warn,
            Anchor::Kernel { kernel: k },
            "w",
        ));
        r.push(Diagnostic::new(
            "CG020",
            Severity::Error,
            Anchor::Kernel { kernel: k },
            "e",
        ));
        r.push(Diagnostic::new(
            "CG043",
            Severity::Warn,
            Anchor::Connector {
                connector: ConnectorId::new(2),
            },
            "m",
        ));
        r.push(Diagnostic::new(
            "CG000",
            Severity::Info,
            Anchor::Connector {
                connector: ConnectorId::new(3),
            },
            "i",
        ));
        let s = dot_style(&r);
        assert_eq!(s.kernel_fill[&0], "red");
        assert_eq!(s.connector_color[&2], "orange");
        assert!(!s.connector_color.contains_key(&3));
    }
}

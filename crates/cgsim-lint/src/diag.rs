//! The diagnostics data model: codes, severities, anchors, reports.
//!
//! Every finding a lint pass produces is a [`Diagnostic`]: a stable `CG0xx`
//! code, a severity, an [`Anchor`] naming the graph element the finding is
//! about, and a human-readable message. A [`LintReport`] collects the
//! diagnostics of one graph and renders them for humans (rustc-style lines)
//! or machines (JSON).

use cgsim_core::schedule::{FiringVector, GraphBounds};
use cgsim_core::{ConnectorId, FlatGraph, GraphError, KernelId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// How bad a finding is.
///
/// `Error` means the graph cannot execute correctly (deadlock, type error,
/// budget overflow) — deny-by-default consumers refuse to run it. `Warn`
/// flags constructs that execute but deserve review; `Info` is purely
/// informational.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Severity {
    /// Informational note.
    Info,
    /// Suspicious but executable.
    Warn,
    /// The graph is broken; running it would fail or hang.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        })
    }
}

/// The graph element a diagnostic is anchored to — the lint analogue of a
/// source span.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Anchor {
    /// The graph as a whole.
    Graph,
    /// One kernel instance.
    Kernel {
        /// The kernel the finding is about.
        kernel: KernelId,
    },
    /// One connector.
    Connector {
        /// The connector the finding is about.
        connector: ConnectorId,
    },
    /// One port of one kernel.
    Port {
        /// The kernel owning the port.
        kernel: KernelId,
        /// Port index within the kernel's `ports` array.
        port: usize,
    },
}

impl Anchor {
    /// Render the anchor against `graph` (instance names where available).
    pub fn render(&self, graph: &FlatGraph) -> String {
        let instance = |k: &KernelId| {
            graph
                .kernels
                .get(k.index())
                .map(|k| k.instance.clone())
                .unwrap_or_else(|| k.to_string())
        };
        match self {
            Anchor::Graph => graph.name.clone(),
            Anchor::Kernel { kernel } => instance(kernel),
            Anchor::Connector { connector } => connector.to_string(),
            Anchor::Port { kernel, port } => {
                let pname = graph
                    .kernels
                    .get(kernel.index())
                    .and_then(|k| k.ports.get(*port))
                    .map(|p| p.name.clone())
                    .unwrap_or_else(|| port.to_string());
                format!("{}.{pname}", instance(kernel))
            }
        }
    }
}

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Stable diagnostic code (`CG0xx`); never changes meaning.
    pub code: String,
    /// Severity class.
    pub severity: Severity,
    /// Graph element the finding is anchored to.
    pub anchor: Anchor,
    /// Human-readable description (no code prefix).
    pub message: String,
}

impl Diagnostic {
    /// Build a diagnostic.
    pub fn new(
        code: impl Into<String>,
        severity: Severity,
        anchor: Anchor,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code: code.into(),
            severity,
            anchor,
            message: message.into(),
        }
    }

    /// Convert a [`GraphError`] into an Error-severity diagnostic, reusing
    /// the error's stable code and message and anchoring it to the connector
    /// it names where possible.
    pub fn from_graph_error(e: &GraphError) -> Self {
        let anchor = match e {
            GraphError::IncompatibleSettings { connector, .. }
            | GraphError::DanglingConnector { connector }
            | GraphError::UnconsumedConnector { connector }
            | GraphError::DuplicateGlobal { connector }
            | GraphError::IoTypeMismatch { connector, .. } => Anchor::Connector {
                connector: *connector,
            },
            _ => Anchor::Graph,
        };
        Diagnostic::new(e.code(), Severity::Error, anchor, e.message())
    }
}

/// All findings for one graph.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LintReport {
    /// Name of the linted graph.
    pub graph: String,
    /// Findings, in pass order (structural first, budgets last).
    pub diagnostics: Vec<Diagnostic>,
    /// Minimal integer SDF firing counts per kernel, computed by the
    /// rate-balance pass. `None` when the pass has not run (structural
    /// errors aborted linting) or when the balance equations are
    /// inconsistent (a `CG030` finding is present instead). Read through
    /// [`LintReport::firing_vector`].
    #[serde(default)]
    pub firing: Option<FiringVector>,
    /// Static occupancy/capacity/latency bounds computed by the `CG06x`
    /// bounds pass. `None` when the graph has no firing vector or its
    /// kernel dataflow is cyclic (a `CG063` finding explains which when
    /// bounds diagnostics are enabled). Read through
    /// [`LintReport::bounds`].
    #[serde(default)]
    pub bounds: Option<GraphBounds>,
}

impl LintReport {
    /// An empty report for the named graph.
    pub fn new(graph: impl Into<String>) -> Self {
        LintReport {
            graph: graph.into(),
            diagnostics: Vec::new(),
            firing: None,
            bounds: None,
        }
    }

    /// The graph's SDF firing vector — the minimal integer repetitions per
    /// kernel that balance every single-producer stream edge — when the
    /// rate-balance pass ran and found the equations consistent. This is
    /// the same computation backing the `CG030` check, exposed so the
    /// schedule compiler (`cgsim-compiled`) shares it instead of
    /// re-deriving the vector.
    pub fn firing_vector(&self) -> Option<&FiringVector> {
        self.firing.as_ref()
    }

    /// The static bounds computed by the `CG06x` pass — per-connector
    /// worst-case occupancy and minimal deadlock-free capacity plus
    /// critical-path latency and throughput — when the graph is
    /// rate-consistent and acyclic.
    pub fn bounds(&self) -> Option<&GraphBounds> {
        self.bounds.as_ref()
    }

    /// Append a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Whether any Error-severity finding is present.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Number of Error-severity findings.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of findings at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// The distinct codes present, sorted.
    pub fn codes(&self) -> BTreeSet<String> {
        self.diagnostics.iter().map(|d| d.code.clone()).collect()
    }

    /// Findings at `severity`.
    pub fn at(&self, severity: Severity) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(move |d| d.severity == severity)
    }

    /// Whether the report is completely clean (no findings at all).
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Render the report for humans, one rustc-style line per finding, with
    /// anchors resolved against `graph`:
    ///
    /// ```text
    /// cgsim-lint: graph `deadlock` — 1 error, 0 warnings
    ///   error[CG020] at feedback_inc_0: feedback cycle …
    /// ```
    pub fn render_human(&self, graph: &FlatGraph) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "cgsim-lint: graph `{}` — {} error{}, {} warning{}",
            self.graph,
            self.error_count(),
            if self.error_count() == 1 { "" } else { "s" },
            self.count(Severity::Warn),
            if self.count(Severity::Warn) == 1 {
                ""
            } else {
                "s"
            },
        );
        for d in &self.diagnostics {
            let _ = writeln!(
                out,
                "  {}[{}] at {}: {}",
                d.severity,
                d.code,
                d.anchor.render(graph),
                d.message
            );
        }
        // The firing vector rides on the report (and its JSON form) for
        // machine consumers; surface it for humans too so the two renderers
        // agree on what the report contains.
        if let Some(firing) = &self.firing {
            let counts: Vec<String> = firing
                .counts
                .iter()
                .enumerate()
                .map(|(ki, &n)| {
                    let name = graph
                        .kernels
                        .get(ki)
                        .map(|k| k.instance.as_str())
                        .unwrap_or("?");
                    format!("{name} x{n}")
                })
                .collect();
            let _ = writeln!(out, "  firing vector: {}", counts.join(", "));
        }
        out
    }

    /// Render the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("LintReport serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_and_displays() {
        assert!(Severity::Error > Severity::Warn);
        assert!(Severity::Warn > Severity::Info);
        assert_eq!(Severity::Error.to_string(), "error");
    }

    #[test]
    fn report_counts_and_codes() {
        let mut r = LintReport::new("g");
        assert!(r.is_clean() && !r.has_errors());
        r.push(Diagnostic::new(
            "CG020",
            Severity::Error,
            Anchor::Graph,
            "x",
        ));
        r.push(Diagnostic::new(
            "CG043",
            Severity::Warn,
            Anchor::Connector {
                connector: ConnectorId::new(1),
            },
            "y",
        ));
        assert!(r.has_errors());
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.count(Severity::Warn), 1);
        assert_eq!(
            r.codes().into_iter().collect::<Vec<_>>(),
            vec!["CG020", "CG043"]
        );
    }

    #[test]
    fn graph_error_conversion_reuses_code_and_message() {
        let e = GraphError::DanglingConnector {
            connector: ConnectorId::new(3),
        };
        let d = Diagnostic::from_graph_error(&e);
        assert_eq!(d.code, "CG004");
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(
            d.anchor,
            Anchor::Connector {
                connector: ConnectorId::new(3)
            }
        );
        assert_eq!(d.message, e.message());
    }

    #[test]
    fn json_roundtrip() {
        let mut r = LintReport::new("g");
        r.push(Diagnostic::new(
            "CG050",
            Severity::Error,
            Anchor::Kernel {
                kernel: KernelId::new(2),
            },
            "too many kernels",
        ));
        let back: LintReport = serde_json::from_str(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }
}

//! Lint configuration: channel-depth defaults, declared kernel rates, and
//! per-realm hardware budgets.

use std::collections::HashMap;

/// Hardware budgets for the AIE realm, checked by the `CG05x` pass.
///
/// The numbers default to the VC1902 device the paper targets; they live
/// here (rather than being imported from `aie-sim`) so the lint crate stays
/// a leaf dependency of `cgsim-core` and every consumer — runtime, deploy,
/// extractor — can gate on the same limits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RealmBudgets {
    /// AIE tiles available on the device (VC1902: 50 columns × 8 rows).
    /// With the paper's one-kernel-per-tile placement this bounds the AIE
    /// kernel count.
    pub aie_tiles: usize,
    /// Data memory per AIE tile in bytes (32 KiB on AIE1). A kernel's window
    /// buffers (ping-pong counted twice) must fit.
    pub tile_data_bytes: u64,
    /// Stream input ports per AIE kernel (the AIE1 stream switch exposes
    /// two 32-bit inputs per core).
    pub stream_in: usize,
    /// Stream output ports per AIE kernel.
    pub stream_out: usize,
}

impl Default for RealmBudgets {
    fn default() -> Self {
        RealmBudgets {
            aie_tiles: 400,
            tile_data_bytes: 32 * 1024,
            stream_in: 2,
            stream_out: 2,
        }
    }
}

/// Configuration for one lint run.
#[derive(Clone, Debug, Default)]
pub struct LintConfig {
    /// Effective channel capacity (elements) for connectors that do not set
    /// an explicit `depth`. `0` falls back to
    /// [`LintConfig::FALLBACK_DEPTH`], matching the runtime's default.
    pub default_depth: u32,
    /// AIE realm budgets for the `CG05x` pass.
    pub budgets: RealmBudgets,
    /// Declared SDF rates per kernel *kind*, by port index — an external
    /// override for kernels whose ports do not carry a `rate` themselves
    /// (e.g. a library of fixed-function kernels). Port rates in the graph
    /// win over entries here.
    pub kernel_rates: HashMap<String, Vec<u32>>,
    /// Emit the informational `CG06x` bounds diagnostics (per-connector
    /// occupancy, critical path, throughput). The bounds *data* is always
    /// computed and attached to the report when derivable; this flag only
    /// controls the Info-level findings, so clean-graph consumers do not
    /// see their reports grow chatty by default. `CG061` (declared capacity
    /// below the minimal deadlock-free bound) is emitted regardless.
    pub emit_bounds: bool,
}

impl LintConfig {
    /// Channel capacity assumed when neither the connector nor the config
    /// specifies one — the cooperative runtime's default channel depth.
    pub const FALLBACK_DEPTH: u32 = 64;

    /// The effective default depth (resolving `0` to the fallback).
    pub fn effective_default_depth(&self) -> u32 {
        if self.default_depth == 0 {
            Self::FALLBACK_DEPTH
        } else {
            self.default_depth
        }
    }

    /// Declare rates for all ports of kernel kind `kind`, in port order.
    pub fn with_kernel_rates(mut self, kind: impl Into<String>, rates: Vec<u32>) -> Self {
        self.kernel_rates.insert(kind.into(), rates);
        self
    }

    /// Enable the informational `CG06x` bounds diagnostics.
    pub fn with_bounds(mut self) -> Self {
        self.emit_bounds = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_vc1902() {
        let b = RealmBudgets::default();
        assert_eq!(b.aie_tiles, 400);
        assert_eq!(b.tile_data_bytes, 32768);
        assert_eq!((b.stream_in, b.stream_out), (2, 2));
    }

    #[test]
    fn zero_depth_falls_back() {
        assert_eq!(
            LintConfig::default().effective_default_depth(),
            LintConfig::FALLBACK_DEPTH
        );
        let cfg = LintConfig {
            default_depth: 8,
            ..LintConfig::default()
        };
        assert_eq!(cfg.effective_default_depth(), 8);
    }

    #[test]
    fn kernel_rates_builder() {
        let cfg = LintConfig::default().with_kernel_rates("fir", vec![1, 4]);
        assert_eq!(cfg.kernel_rates["fir"], vec![1, 4]);
    }
}

//! # cgsim-lint — ahead-of-run static analysis for compute graphs
//!
//! The paper's flow trusts the `constexpr`-serialized graph descriptor and
//! discovers topology mistakes only when the simulation stalls or
//! `aiecompiler` rejects the design. This crate moves those discoveries
//! ahead of any execution: [`lint_graph`] runs a suite of passes over a
//! [`FlatGraph`] and returns a [`LintReport`] of coded diagnostics.
//!
//! ## Lint codes
//!
//! | Code | Severity | Finding |
//! |------|----------|---------|
//! | `CG001`–`CG011` | Error | Structural invariants shared with [`cgsim_core::GraphError`] (type/arity mismatches, dangling or unconsumed connectors, out-of-range ids, …) |
//! | `CG012` | Error | Graph rejected by a deny-by-default lint gate (carried by `GraphError::LintRejected`) |
//! | `CG020` | Error | Feedback cycle with no external token source: guaranteed deadlock |
//! | `CG021` | Warn | Feedback cycle primed from outside: correct only with priming tokens |
//! | `CG022` | Error | Stream channel capacity below one firing's token demand |
//! | `CG030` | Error | SDF rate-balance violation: firing-vector equations are inconsistent |
//! | `CG040` | Warn | Kernel unreachable from any global input |
//! | `CG041` | Warn | Kernel output can never reach a global output |
//! | `CG042` | Warn | Broadcast fan-out feeding a dead branch |
//! | `CG043` | Warn | Merge fan-in: output order is schedule-dependent (multiset oracle only) |
//! | `CG050` | Error | More AIE kernels than device tiles |
//! | `CG051` | Error | Kernel window buffers exceed per-tile data memory |
//! | `CG052` | Error | Kernel exceeds per-core stream-port budget |
//! | `CG060` | Info | Per-connector worst-case occupancy / period-traffic bounds (with [`LintConfig::emit_bounds`]) |
//! | `CG061` | Warn | Declared channel capacity below the minimal deadlock-free SDF bound |
//! | `CG062` | Info | Critical-path latency and steady-state throughput bounds (with [`LintConfig::emit_bounds`]) |
//! | `CG063` | Info | Bounds unavailable: no firing vector or cyclic dataflow (with [`LintConfig::emit_bounds`]) |
//! | `CG064` | Info | Schedule period too large for cheap period-unrolled analysis (with [`LintConfig::emit_bounds`]) |
//!
//! Consumers: the `cgsim-lint` CLI binary (umbrella crate), the
//! deny-by-default verify hooks in `cgsim-runtime::RuntimeContext` and
//! `aie-sim::deploy`, the extractor (report embedded in generated headers)
//! and the `conform` fuzzing driver (fail-fast on generator drift).

#![warn(missing_docs)]

pub mod config;
pub mod diag;
mod passes;
pub mod style;

pub use config::{LintConfig, RealmBudgets};
pub use diag::{Anchor, Diagnostic, LintReport, Severity};
pub use passes::bounds::{cost_estimate, occupancy_bounds, workload_tokens};
pub use passes::port_rate;
pub use style::{bounds_labels, dot_style};

use cgsim_core::FlatGraph;

/// What to do with Error-severity lint findings before running or deploying
/// a graph.
///
/// This is the policy knob shared by every lint gate in the workspace: the
/// runtime's ahead-of-run verification (`cgsim-runtime`), the deployment
/// gate (`aie-sim`), and the `RunSpec` launch API all consume it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum VerifyPolicy {
    /// Refuse to proceed (`cgsim_core::GraphError::LintRejected`, code
    /// `CG012`). The default: a graph the verifier can prove broken —
    /// deadlocked, rate-imbalanced, over budget — should not burn a run.
    #[default]
    Deny,
    /// Print the report to stderr and proceed anyway.
    Warn,
    /// Skip the ahead-of-run verification entirely.
    Off,
}

/// Run every lint pass over `graph` and collect the findings.
///
/// Passes run in order: structural integrity (`CG00x`), reachability
/// (`CG040`/`CG041`), deadlock and capacity (`CG02x`), rate balance
/// (`CG030`), dataflow shape (`CG042`/`CG043`), realm budgets (`CG05x`),
/// static bounds (`CG06x`, which also attaches [`LintReport::bounds`]).
/// If the descriptor has out-of-range indices the structural findings are
/// returned alone — the deeper passes cannot index into a corrupt graph.
pub fn lint_graph(graph: &FlatGraph, config: &LintConfig) -> LintReport {
    let mut report = LintReport::new(&graph.name);
    if passes::structural(graph, &mut report) {
        return report;
    }
    let reach = passes::reachability(graph, &mut report);
    passes::deadlock::check(graph, config, &mut report);
    passes::rates::check(graph, config, &mut report);
    passes::shape(graph, &reach, &mut report);
    passes::budget::check(graph, config, &mut report);
    passes::bounds::check(graph, config, &mut report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgsim_core::{
        AttrList, ConnectorId, DTypeDesc, FlatConnector, FlatGraph, FlatKernel, FlatPort, PortDir,
        PortKind, PortSettings, Realm,
    };

    fn dtype() -> DTypeDesc {
        DTypeDesc::of::<i32>()
    }

    fn port(name: &str, dir: PortDir, c: usize) -> FlatPort {
        FlatPort {
            name: name.into(),
            dir,
            dtype: dtype(),
            settings: PortSettings::DEFAULT,
            connector: ConnectorId::new(c),
            rate: 0,
        }
    }

    fn kernel(instance: &str, ports: Vec<FlatPort>) -> FlatKernel {
        FlatKernel {
            kind: instance.split('_').next().unwrap().into(),
            instance: instance.into(),
            realm: Realm::Aie,
            ports,
        }
    }

    fn connector() -> FlatConnector {
        FlatConnector {
            dtype: dtype(),
            settings: PortSettings::DEFAULT,
            kind: PortKind::Stream,
            attrs: AttrList::new(),
        }
    }

    /// input c0 → k_0 → c1 → k_1 → c2 (output): lints clean.
    fn pipeline() -> FlatGraph {
        FlatGraph {
            name: "pipe".into(),
            kernels: vec![
                kernel(
                    "k_0",
                    vec![port("in", PortDir::In, 0), port("out", PortDir::Out, 1)],
                ),
                kernel(
                    "k_1",
                    vec![port("in", PortDir::In, 1), port("out", PortDir::Out, 2)],
                ),
            ],
            connectors: vec![connector(), connector(), connector()],
            inputs: vec![ConnectorId::new(0)],
            outputs: vec![ConnectorId::new(2)],
        }
    }

    #[test]
    fn clean_pipeline_has_no_findings() {
        let r = lint_graph(&pipeline(), &LintConfig::default());
        assert!(r.is_clean(), "{}", r.render_human(&pipeline()));
    }

    #[test]
    fn structural_findings_are_collected_not_first_only() {
        let mut g = pipeline();
        g.connectors[1].dtype = DTypeDesc::of::<f64>(); // CG001 twice (both endpoints)
        g.outputs.push(ConnectorId::new(2)); // CG007
        let r = lint_graph(&g, &LintConfig::default());
        assert!(r.codes().contains("CG001"));
        assert!(r.codes().contains("CG007"));
        assert!(r.error_count() >= 3);
    }

    #[test]
    fn out_of_range_index_aborts_deeper_passes() {
        let mut g = pipeline();
        g.kernels[0].ports[1].connector = ConnectorId::new(99);
        let r = lint_graph(&g, &LintConfig::default());
        assert!(r.codes().contains("CG006"));
        // Only structural findings present: nothing from CG02x/CG04x.
        assert!(r.codes().iter().all(|c| c <= &"CG011".to_owned()));
    }

    #[test]
    fn unprimed_feedback_cycle_is_cg020() {
        // k_0 reads input c0 and feedback c2, writes output c1 and c2.
        let g = FlatGraph {
            name: "dead".into(),
            kernels: vec![kernel(
                "k_0",
                vec![
                    port("a", PortDir::In, 0),
                    port("fb", PortDir::In, 2),
                    port("out", PortDir::Out, 1),
                    port("fb_out", PortDir::Out, 2),
                ],
            )],
            connectors: vec![connector(), connector(), connector()],
            inputs: vec![ConnectorId::new(0)],
            outputs: vec![ConnectorId::new(1)],
        };
        let r = lint_graph(&g, &LintConfig::default());
        assert!(r.has_errors());
        assert!(r.codes().contains("CG020"), "{}", r.render_human(&g));
    }

    #[test]
    fn primed_feedback_cycle_is_cg021_warn_only() {
        // Same loop but the feedback connector is also a global input.
        let g = FlatGraph {
            name: "primed".into(),
            kernels: vec![kernel(
                "k_0",
                vec![
                    port("a", PortDir::In, 0),
                    port("fb", PortDir::In, 2),
                    port("out", PortDir::Out, 1),
                    port("fb_out", PortDir::Out, 2),
                ],
            )],
            connectors: vec![connector(), connector(), connector()],
            inputs: vec![ConnectorId::new(0), ConnectorId::new(2)],
            outputs: vec![ConnectorId::new(1)],
        };
        let r = lint_graph(&g, &LintConfig::default());
        assert!(!r.has_errors(), "{}", r.render_human(&g));
        assert!(r.codes().contains("CG021"));
    }

    #[test]
    fn two_kernel_cycle_detected() {
        // k_0 → c1 → k_1 → c2 → k_0, no external source on the loop wires.
        let g = FlatGraph {
            name: "loop2".into(),
            kernels: vec![
                kernel(
                    "k_0",
                    vec![
                        port("a", PortDir::In, 0),
                        port("fb", PortDir::In, 2),
                        port("out", PortDir::Out, 1),
                        port("res", PortDir::Out, 3),
                    ],
                ),
                kernel(
                    "k_1",
                    vec![port("in", PortDir::In, 1), port("out", PortDir::Out, 2)],
                ),
            ],
            connectors: vec![connector(), connector(), connector(), connector()],
            inputs: vec![ConnectorId::new(0)],
            outputs: vec![ConnectorId::new(3)],
        };
        let r = lint_graph(&g, &LintConfig::default());
        let report = r.render_human(&g);
        assert!(r.codes().contains("CG020"), "{report}");
        assert!(
            report.contains("k_0 → k_1") || report.contains("k_0"),
            "{report}"
        );
    }

    #[test]
    fn capacity_below_rate_is_cg022() {
        let mut g = pipeline();
        g.kernels[1].ports[0].rate = 8; // k_1 pops 8 per firing …
        g.connectors[1].settings = PortSettings::new().depth(4); // … from a 4-deep channel
        g.kernels[0].ports[1].settings = PortSettings::new().depth(4);
        let r = lint_graph(&g, &LintConfig::default());
        assert!(r.codes().contains("CG022"), "{}", r.render_human(&g));
    }

    #[test]
    fn rate_imbalance_is_cg030() {
        // k_0 pushes 2 per firing, k_1 pops 3: fine in isolation (firing
        // ratio 2/3) — so pin both kernels together through a second
        // 1:1 connector to force the contradiction.
        let mut g = pipeline();
        g.kernels[0].ports.push(port("aux_out", PortDir::Out, 3));
        g.kernels[1].ports.push(port("aux_in", PortDir::In, 3));
        g.connectors.push(connector());
        g.kernels[0].ports[1].rate = 2;
        g.kernels[1].ports[0].rate = 3;
        let r = lint_graph(&g, &LintConfig::default());
        assert!(r.codes().contains("CG030"), "{}", r.render_human(&g));
    }

    #[test]
    fn firing_vector_exposed_for_balanced_graphs() {
        // 1:1 pipeline: both kernels fire once per period.
        let r = lint_graph(&pipeline(), &LintConfig::default());
        let v = r.firing_vector().expect("balanced graph has a vector");
        assert_eq!(v.counts, vec![1, 1]);

        // k_0 produces 2/firing, k_1 consumes 3/firing on their only shared
        // edge: consistent, with minimal integer firings 3 and 2.
        let mut g = pipeline();
        g.kernels[0].ports[1].rate = 2;
        g.kernels[1].ports[0].rate = 3;
        let r = lint_graph(&g, &LintConfig::default());
        assert!(!r.codes().contains("CG030"), "{}", r.render_human(&g));
        let v = r.firing_vector().expect("consistent rates have a vector");
        assert_eq!(v.counts, vec![3, 2]);
    }

    #[test]
    fn firing_vector_absent_on_imbalance_and_structural_abort() {
        // Rate contradiction (same construction as rate_imbalance_is_cg030):
        // CG030 present, vector withheld.
        let mut g = pipeline();
        g.kernels[0].ports.push(port("aux_out", PortDir::Out, 3));
        g.kernels[1].ports.push(port("aux_in", PortDir::In, 3));
        g.connectors.push(connector());
        g.kernels[0].ports[1].rate = 2;
        g.kernels[1].ports[0].rate = 3;
        let r = lint_graph(&g, &LintConfig::default());
        assert!(r.codes().contains("CG030"));
        assert!(r.firing_vector().is_none());

        // Structural abort: the rate pass never runs, so no vector either.
        let mut g = pipeline();
        g.kernels[0].ports[1].connector = ConnectorId::new(99);
        let r = lint_graph(&g, &LintConfig::default());
        assert!(r.firing_vector().is_none());
    }

    #[test]
    fn kernel_rates_config_feeds_the_rate_pass() {
        let mut g = pipeline();
        g.kernels[0].ports.push(port("aux_out", PortDir::Out, 3));
        g.kernels[1].ports.push(port("aux_in", PortDir::In, 3));
        g.connectors.push(connector());
        // Same imbalance, but declared via the kernel library instead of
        // the graph ("k" kind, port order: in, out, aux).
        let cfg = LintConfig::default()
            .with_kernel_rates("k", vec![3, 2, 1])
            .with_kernel_rates("unrelated", vec![9]);
        let r = lint_graph(&g, &cfg);
        assert!(r.codes().contains("CG030"), "{}", r.render_human(&g));
        assert!(lint_graph(&g, &LintConfig::default()).is_clean());
    }

    #[test]
    fn dead_branches_warn_cg040_cg041_cg042() {
        // c1 broadcasts to k_1 (live) and k_2 (writes c3 which nobody
        // reads — but make c3 an output-less sink connector read by k_3
        // that drops it). Simpler: k_2 writes c3, k_3 reads c3, writes
        // nothing onward? Every connector must be consumed; so give k_2's
        // output to k_3 which has no outputs (a sink kernel is bwd-live by
        // definition). Instead make the dead branch via an unreachable
        // kernel: k_2 reads c3 which no input feeds.
        let mut g = pipeline();
        g.kernels.push(kernel(
            "k_2",
            vec![port("in", PortDir::In, 3), port("out", PortDir::Out, 4)],
        ));
        g.kernels.push(kernel(
            "k_3",
            vec![port("in", PortDir::In, 4), port("out", PortDir::Out, 3)],
        ));
        g.connectors.push(connector());
        g.connectors.push(connector());
        let r = lint_graph(&g, &LintConfig::default());
        assert!(r.codes().contains("CG040")); // k_2/k_3 unreachable
        assert!(r.codes().contains("CG041")); // their work never drains
                                              // In a structurally valid graph, an unreachable region necessarily
                                              // feeds itself — the deadlock pass flags the sealed loop too.
        assert!(r.codes().contains("CG020"));
    }

    #[test]
    fn broadcast_into_dead_branch_warns_cg042() {
        let mut g = pipeline();
        // k_2 also reads c1 (broadcast) but its output c3 only feeds k_3,
        // whose output goes back to k_2: a sealed sub-loop that can't reach
        // the global output.
        g.kernels.push(kernel(
            "k_2",
            vec![port("in", PortDir::In, 1), port("out", PortDir::Out, 3)],
        ));
        g.kernels.push(kernel(
            "k_3",
            vec![port("in", PortDir::In, 3), port("out", PortDir::Out, 4)],
        ));
        g.kernels[2].ports.push(port("loop_in", PortDir::In, 4));
        g.connectors.push(connector());
        g.connectors.push(connector());
        let r = lint_graph(&g, &LintConfig::default());
        assert!(r.codes().contains("CG042"), "{}", r.render_human(&g));
    }

    #[test]
    fn merge_warns_cg043() {
        let mut g = pipeline();
        // Second producer onto c1.
        g.kernels.push(kernel(
            "k_2",
            vec![port("in", PortDir::In, 0), port("out", PortDir::Out, 1)],
        ));
        let r = lint_graph(&g, &LintConfig::default());
        assert!(!r.has_errors());
        assert!(r.codes().contains("CG043"));
    }

    #[test]
    fn tile_count_overflow_is_cg050() {
        let mut g = pipeline();
        let cfg = LintConfig {
            budgets: RealmBudgets {
                aie_tiles: 1,
                ..RealmBudgets::default()
            },
            ..LintConfig::default()
        };
        g.kernels[1].realm = Realm::Aie;
        let r = lint_graph(&g, &cfg);
        assert!(r.codes().contains("CG050"), "{}", r.render_human(&g));
    }

    #[test]
    fn window_memory_overflow_is_cg051_with_ping_pong_doubling() {
        let mut g = pipeline();
        // 20 KiB ping-pong window = 40 KiB > 32 KiB tile memory. Settings
        // must agree across endpoints and the connector (merge rules).
        let w = PortSettings::new().window_bytes(20 * 1024).ping_pong();
        g.kernels[0].ports[1].settings = w;
        g.kernels[1].ports[0].settings = w;
        g.connectors[1].settings = w;
        g.connectors[1].kind = PortKind::Window;
        let r = lint_graph(&g, &LintConfig::default());
        assert!(r.codes().contains("CG051"), "{}", r.render_human(&g));
        // Exactly at the budget (2 × 8 KiB ping-pong = 32 KiB) is fine —
        // the paper's IIR graph sits precisely there.
        let w = PortSettings::new().window_bytes(8 * 1024).ping_pong();
        let mut g2 = pipeline();
        g2.kernels[1].ports[0].settings = w;
        g2.kernels[1].ports[1].settings = w;
        g2.connectors[1].settings = w;
        g2.connectors[1].kind = PortKind::Window;
        g2.connectors[2].settings = w;
        g2.connectors[2].kind = PortKind::Window;
        g2.kernels[0].ports[1].settings = w;
        let r2 = lint_graph(&g2, &LintConfig::default());
        assert!(!r2.codes().contains("CG051"), "{}", r2.render_human(&g2));
    }

    #[test]
    fn stream_port_overflow_is_cg052() {
        // Three stream inputs on one kernel (budget: 2).
        let g = FlatGraph {
            name: "wide".into(),
            kernels: vec![kernel(
                "k_0",
                vec![
                    port("a", PortDir::In, 0),
                    port("b", PortDir::In, 1),
                    port("c", PortDir::In, 2),
                    port("out", PortDir::Out, 3),
                ],
            )],
            connectors: vec![connector(), connector(), connector(), connector()],
            inputs: vec![
                ConnectorId::new(0),
                ConnectorId::new(1),
                ConnectorId::new(2),
            ],
            outputs: vec![ConnectorId::new(3)],
        };
        let r = lint_graph(&g, &LintConfig::default());
        assert!(r.codes().contains("CG052"), "{}", r.render_human(&g));
    }

    #[test]
    fn non_aie_kernels_are_exempt_from_budgets() {
        let mut g = pipeline();
        let w = PortSettings::new().window_bytes(40 * 1024);
        g.kernels[0].realm = Realm::NoExtract;
        g.kernels[0].ports[1].settings = w;
        g.kernels[1].ports[0].settings = w;
        g.connectors[1].settings = w;
        g.connectors[1].kind = PortKind::Window;
        g.kernels[1].realm = Realm::Hls;
        let r = lint_graph(&g, &LintConfig::default());
        assert!(!r.codes().contains("CG051"), "{}", r.render_human(&g));
    }

    #[test]
    fn bounds_attached_for_rate_consistent_graphs() {
        use cgsim_core::Rational;
        let r = lint_graph(&pipeline(), &LintConfig::default());
        let b = r.bounds().expect("rate-consistent pipeline has bounds");
        assert_eq!(b.connectors.len(), 3);
        for c in &b.connectors {
            assert_eq!(c.period_tokens, 1);
            assert_eq!(c.min_capacity, 1);
            assert_eq!(c.effective_capacity, u64::from(LintConfig::FALLBACK_DEPTH));
        }
        assert_eq!(b.period_firings, 2);
        assert_eq!(b.critical_path_firings, 2);
        assert_eq!(b.throughput, Rational::new(1, 2));
        // Bounds data rides along silently by default …
        assert!(r.is_clean(), "{}", r.render_human(&pipeline()));
        // … and `emit_bounds` surfaces the Info findings.
        let r = lint_graph(&pipeline(), &LintConfig::default().with_bounds());
        assert!(
            r.codes().contains("CG060"),
            "{}",
            r.render_human(&pipeline())
        );
        assert!(r.codes().contains("CG062"));
        assert!(!r.has_errors());
    }

    #[test]
    fn capacity_below_sdf_minimum_warns_cg061() {
        // Rates 2:3 need p + c − gcd = 4 slots; depth 3 satisfies the
        // single-firing demand (no CG022) but not the SDF minimum.
        let mut g = pipeline();
        g.kernels[0].ports[1].rate = 2;
        g.kernels[1].ports[0].rate = 3;
        g.connectors[1].settings = PortSettings::new().depth(3);
        let r = lint_graph(&g, &LintConfig::default());
        assert!(!r.codes().contains("CG022"), "{}", r.render_human(&g));
        assert!(r.codes().contains("CG061"), "{}", r.render_human(&g));
        assert!(!r.has_errors());
        // Depth 4 meets the bound: no warning.
        g.connectors[1].settings = PortSettings::new().depth(4);
        let r = lint_graph(&g, &LintConfig::default());
        assert!(!r.codes().contains("CG061"), "{}", r.render_human(&g));
    }

    #[test]
    fn cyclic_graph_reports_cg063_instead_of_bounds() {
        // Primed feedback loop: rate-consistent but cyclic — no bounds.
        let g = FlatGraph {
            name: "primed".into(),
            kernels: vec![kernel(
                "k_0",
                vec![
                    port("a", PortDir::In, 0),
                    port("fb", PortDir::In, 2),
                    port("out", PortDir::Out, 1),
                    port("fb_out", PortDir::Out, 2),
                ],
            )],
            connectors: vec![connector(), connector(), connector()],
            inputs: vec![ConnectorId::new(0), ConnectorId::new(2)],
            outputs: vec![ConnectorId::new(1)],
        };
        let r = lint_graph(&g, &LintConfig::default().with_bounds());
        assert!(r.bounds().is_none());
        assert!(r.codes().contains("CG063"), "{}", r.render_human(&g));
    }

    #[test]
    fn workload_functions_predict_pipeline_traffic() {
        let g = pipeline();
        let cfg = LintConfig::default();
        // 10 elements in → 10 across every connector of a 1:1 pipeline.
        assert_eq!(workload_tokens(&g, &cfg, &[10]), Some(vec![10, 10, 10]));
        // Occupancy bound: a starved channel fills to the workload,
        // capacity permitting.
        assert_eq!(occupancy_bounds(&g, &cfg, &[10]), Some(vec![10, 10, 10]));
        assert_eq!(
            occupancy_bounds(&g, &cfg, &[100]),
            Some(vec![64, 64, 64]),
            "capacity caps the bound"
        );
        let cost = cost_estimate(&g, &cfg, &[10]).unwrap();
        assert_eq!(cost.tokens, 30);
        assert_eq!(cost.firings, 20);
        assert!(cost.polls_hint >= cost.firings + 2 * cost.tokens);
    }

    #[test]
    fn occupancy_bound_ignores_sibling_coupling_through_forks() {
        // in c0 → k_0 forks to c1 and c2; k_1 zips both back to c3. A
        // frozen-consumer model would bound c1 at the sibling's depth 2
        // (k_1 frozen → c2 full → k_0 stalls). That refinement is tighter
        // here but unsound in general — running a consumer pops one token
        // from the target yet can unblock a rate-amplified refill through
        // its side inputs — so `occupancy_bounds` deliberately ignores
        // sibling coupling and reports the schedule-independent meet
        // min(capacity, workload) instead.
        let g = FlatGraph {
            name: "fork".into(),
            kernels: vec![
                kernel(
                    "k_0",
                    vec![
                        port("in", PortDir::In, 0),
                        port("a", PortDir::Out, 1),
                        port("b", PortDir::Out, 2),
                    ],
                ),
                kernel(
                    "k_1",
                    vec![
                        port("a", PortDir::In, 1),
                        port("b", PortDir::In, 2),
                        port("out", PortDir::Out, 3),
                    ],
                ),
            ],
            connectors: {
                let mut cs = vec![connector(), connector(), connector(), connector()];
                cs[2].settings = PortSettings::new().depth(2);
                cs
            },
            inputs: vec![ConnectorId::new(0)],
            outputs: vec![ConnectorId::new(3)],
        };
        let cfg = LintConfig::default();
        let bounds = occupancy_bounds(&g, &cfg, &[50]).unwrap();
        // c1: workload 50 < default depth 64, so the workload binds.
        assert_eq!(bounds[1], 50);
        // c2: its own depth 2 binds.
        assert_eq!(bounds[2], 2);
    }

    #[test]
    fn occupancy_bound_refuses_unbounded_source_kernels() {
        // A kernel with no token input fires an unknowable number of
        // times, so no push total — and hence no occupancy bound — exists.
        let g = FlatGraph {
            name: "src".into(),
            kernels: vec![kernel("k_0", vec![port("out", PortDir::Out, 0)])],
            connectors: vec![connector()],
            inputs: vec![],
            outputs: vec![ConnectorId::new(0)],
        };
        assert_eq!(occupancy_bounds(&g, &LintConfig::default(), &[]), None);
    }

    #[test]
    fn report_renders_human_and_json() {
        let mut g = pipeline();
        g.kernels[0].ports[1].connector = ConnectorId::new(2); // c1 dangles
        let r = lint_graph(&g, &LintConfig::default());
        let human = r.render_human(&g);
        assert!(human.contains("cgsim-lint: graph `pipe`"));
        assert!(human.contains("error[CG004]"));
        let json = r.to_json();
        assert!(json.contains("\"CG004\""));
        let back: LintReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn both_renderers_carry_the_firing_vector() {
        let g = pipeline();
        let r = lint_graph(&g, &LintConfig::default());
        let v: serde_json::Value = serde_json::from_str(&r.to_json()).unwrap();
        assert_eq!(v["firing"]["counts"], serde_json::json!([1, 1]));
        assert_eq!(v["bounds"]["connectors"][0]["min_capacity"], 1);
        assert!(r.render_human(&g).contains("firing vector: k_0 x1, k_1 x1"));
    }
}

//! SDF rate-balance checking: `CG030`.
//!
//! Treating each kernel as an SDF actor with per-port rates (declared on
//! the port, supplied by the kernel library, or defaulting to 1), every
//! point-to-point connector imposes the balance equation
//! `f(producer) · rate(out port) = f(consumer) · rate(in port)` on the
//! firing vector `f`. The pass propagates a rational firing vector across
//! the graph and reports any connector whose equation contradicts the rates
//! already forced by the rest of the graph — the static form of a pipeline
//! that drifts out of step and eventually starves or floods a channel.
//!
//! Merge connectors (several producers) and runtime parameters are excluded:
//! their token flow is not a single-producer SDF edge.

use crate::config::LintConfig;
use crate::diag::{Anchor, Diagnostic, LintReport, Severity};
use crate::passes::port_rate;
use cgsim_core::{ConnectorId, FlatGraph, PortKind};

/// A non-negative rational, kept in lowest terms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Ratio {
    num: u64,
    den: u64,
}

impl Ratio {
    const ONE: Ratio = Ratio { num: 1, den: 1 };

    fn new(num: u64, den: u64) -> Ratio {
        debug_assert!(den != 0);
        let g = gcd(num.max(1), den);
        Ratio {
            num: num / g,
            den: den / g,
        }
    }

    /// `self * (num/den)`.
    fn scale(self, num: u64, den: u64) -> Ratio {
        Ratio::new(self.num * num, self.den * den)
    }
}

impl std::fmt::Display for Ratio {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a.max(1)
}

/// Run the rate-balance pass.
pub(crate) fn check(graph: &FlatGraph, cfg: &LintConfig, report: &mut LintReport) {
    // Balance constraints: (producer kernel, producer rate, consumer kernel,
    // consumer rate, connector) for every single-producer token edge.
    let mut constraints = Vec::new();
    for ci in 0..graph.connectors.len() {
        let c = ConnectorId::new(ci);
        if graph.connectors[ci].kind == PortKind::RuntimeParam {
            continue;
        }
        let producers = graph.producers_of(c);
        if producers.len() != 1 || graph.is_global_input(c) {
            continue; // merge or externally fed: not a pure SDF edge
        }
        let p = producers[0];
        let p_rate = port_rate(graph, cfg, p.kernel.index(), p.port);
        for q in graph.consumers_of(c) {
            let q_rate = port_rate(graph, cfg, q.kernel.index(), q.port);
            constraints.push((p.kernel.index(), p_rate, q.kernel.index(), q_rate, c));
        }
    }

    // Propagate a firing vector per weakly-connected component.
    let nk = graph.kernels.len();
    let mut firing: Vec<Option<Ratio>> = vec![None; nk];
    let mut reported = std::collections::BTreeSet::new();
    for seed in 0..nk {
        if firing[seed].is_some() {
            continue;
        }
        firing[seed] = Some(Ratio::ONE);
        let mut queue = vec![seed];
        while let Some(k) = queue.pop() {
            let f_k = firing[k].expect("queued kernels have firing rates");
            for &(p, p_rate, q, q_rate, c) in &constraints {
                // f(p) * p_rate = f(q) * q_rate, read in whichever
                // direction extends the assignment.
                let (unknown, scale_num, scale_den) = if p == k {
                    (q, p_rate, q_rate)
                } else if q == k {
                    (p, q_rate, p_rate)
                } else {
                    continue;
                };
                let implied = f_k.scale(u64::from(scale_num), u64::from(scale_den));
                match firing[unknown] {
                    None => {
                        firing[unknown] = Some(implied);
                        queue.push(unknown);
                    }
                    Some(existing) if existing != implied && reported.insert(c) => {
                        let (kp, kq) = (&graph.kernels[p], &graph.kernels[q]);
                        report.push(Diagnostic::new(
                            "CG030",
                            Severity::Error,
                            Anchor::Connector { connector: c },
                            format!(
                                "rate imbalance on {c}: `{}` produces {p_rate}/firing and `{}` consumes {q_rate}/firing, which would require firing ratio {} for `{}`, but the rest of the graph fixes it at {}; the pipeline starves or floods this channel",
                                kp.instance, kq.instance, implied,
                                graph.kernels[unknown].instance, existing
                            ),
                        ));
                    }
                    Some(_) => {}
                }
            }
        }
    }
}

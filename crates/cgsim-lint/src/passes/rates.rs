//! SDF rate-balance checking: `CG030`.
//!
//! Treating each kernel as an SDF actor with per-port rates (declared on
//! the port, supplied by the kernel library, or defaulting to 1), every
//! point-to-point connector imposes the balance equation
//! `f(producer) · rate(out port) = f(consumer) · rate(in port)` on the
//! firing vector `f`. The pass propagates a rational firing vector across
//! the graph and reports any connector whose equation contradicts the rates
//! already forced by the rest of the graph — the static form of a pipeline
//! that drifts out of step and eventually starves or floods a channel.
//!
//! When the equations are *consistent* the pass normalizes the per-kernel
//! ratios into minimal integer repetition counts and publishes them as
//! [`LintReport::firing_vector`], so downstream consumers — most notably
//! the `cgsim-compiled` schedule compiler — reuse this computation instead
//! of re-deriving it.
//!
//! Merge connectors (several producers) and runtime parameters are excluded:
//! their token flow is not a single-producer SDF edge.

use crate::config::LintConfig;
use crate::diag::{Anchor, Diagnostic, LintReport, Severity};
use crate::passes::port_rate;
use cgsim_core::schedule::{FiringVector, Rational};
use cgsim_core::{ConnectorId, FlatGraph, PortKind};

/// Run the rate-balance pass.
pub(crate) fn check(graph: &FlatGraph, cfg: &LintConfig, report: &mut LintReport) {
    // Balance constraints: (producer kernel, producer rate, consumer kernel,
    // consumer rate, connector) for every single-producer token edge.
    let mut constraints = Vec::new();
    for ci in 0..graph.connectors.len() {
        let c = ConnectorId::new(ci);
        if graph.connectors[ci].kind == PortKind::RuntimeParam {
            continue;
        }
        let producers = graph.producers_of(c);
        if producers.len() != 1 || graph.is_global_input(c) {
            continue; // merge or externally fed: not a pure SDF edge
        }
        let p = producers[0];
        let p_rate = port_rate(graph, cfg, p.kernel.index(), p.port);
        for q in graph.consumers_of(c) {
            let q_rate = port_rate(graph, cfg, q.kernel.index(), q.port);
            constraints.push((p.kernel.index(), p_rate, q.kernel.index(), q_rate, c));
        }
    }

    // Propagate a firing vector per weakly-connected component.
    let nk = graph.kernels.len();
    let mut firing: Vec<Option<Rational>> = vec![None; nk];
    let mut component: Vec<usize> = vec![0; nk];
    let mut n_components = 0usize;
    let mut consistent = true;
    let mut reported = std::collections::BTreeSet::new();
    for seed in 0..nk {
        if firing[seed].is_some() {
            continue;
        }
        let comp = n_components;
        n_components += 1;
        firing[seed] = Some(Rational::ONE);
        component[seed] = comp;
        let mut queue = vec![seed];
        while let Some(k) = queue.pop() {
            let f_k = firing[k].expect("queued kernels have firing rates");
            for &(p, p_rate, q, q_rate, c) in &constraints {
                // f(p) * p_rate = f(q) * q_rate, read in whichever
                // direction extends the assignment.
                let (unknown, scale_num, scale_den) = if p == k {
                    (q, p_rate, q_rate)
                } else if q == k {
                    (p, q_rate, p_rate)
                } else {
                    continue;
                };
                let implied = f_k.scale(u64::from(scale_num), u64::from(scale_den));
                match firing[unknown] {
                    None => {
                        firing[unknown] = Some(implied);
                        component[unknown] = comp;
                        queue.push(unknown);
                    }
                    Some(existing) if existing != implied => {
                        consistent = false;
                        if reported.insert(c) {
                            let (kp, kq) = (&graph.kernels[p], &graph.kernels[q]);
                            report.push(Diagnostic::new(
                                "CG030",
                                Severity::Error,
                                Anchor::Connector { connector: c },
                                format!(
                                    "rate imbalance on {c}: `{}` produces {p_rate}/firing and `{}` consumes {q_rate}/firing, which would require firing ratio {} for `{}`, but the rest of the graph fixes it at {}; the pipeline starves or floods this channel",
                                    kp.instance, kq.instance, implied,
                                    graph.kernels[unknown].instance, existing
                                ),
                            ));
                        }
                    }
                    Some(_) => {}
                }
            }
        }
    }

    // Publish the normalized vector only when every balance equation held;
    // an inconsistent system has no meaningful repetition counts.
    if consistent {
        let ratios: Vec<Rational> = firing
            .into_iter()
            .map(|f| f.expect("every kernel was seeded"))
            .collect();
        report.firing = Some(FiringVector::from_components(&ratios, &component));
    }
}

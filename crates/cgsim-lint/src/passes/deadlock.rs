//! Capacity-aware deadlock detection: the `CG02x` family.
//!
//! Feedback cycles are found as strongly connected components of the
//! kernel-to-kernel dataflow relation (runtime parameters excluded — an RTP
//! edge never carries firing tokens). A cycle whose connectors receive no
//! tokens from outside the cycle can never fire at all (`CG020`, Error);
//! one that is primed from outside executes but depends on the priming
//! tokens and FIFO depths (`CG021`, Warn). Independently, a stream channel
//! whose capacity is below one firing's token demand wedges its endpoint
//! kernel forever (`CG022`, Error).

use crate::config::LintConfig;
use crate::diag::{Anchor, Diagnostic, LintReport, Severity};
use crate::passes::port_rate;
use cgsim_core::{ConnectorId, FlatGraph, KernelId, PortKind};

/// Run the deadlock pass.
pub(crate) fn check(graph: &FlatGraph, cfg: &LintConfig, report: &mut LintReport) {
    cycles(graph, report);
    capacity(graph, cfg, report);
}

/// Kernel adjacency (producer kernel → consumer kernel), token-carrying
/// connectors only.
fn adjacency(graph: &FlatGraph) -> Vec<Vec<usize>> {
    let mut succ = vec![Vec::new(); graph.kernels.len()];
    for ci in 0..graph.connectors.len() {
        let c = ConnectorId::new(ci);
        if graph.connectors[ci].kind == PortKind::RuntimeParam {
            continue;
        }
        for p in graph.producers_of(c) {
            for q in graph.consumers_of(c) {
                let (pi, qi) = (p.kernel.index(), q.kernel.index());
                if !succ[pi].contains(&qi) {
                    succ[pi].push(qi);
                }
            }
        }
    }
    succ
}

/// Iterative Tarjan SCC over the kernel adjacency. Returns the components
/// in discovery order; single-kernel components are included only when the
/// kernel has a self-loop.
fn sccs(succ: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = succ.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack = Vec::new();
    let mut next_index = 0usize;
    let mut out = Vec::new();

    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        // Explicit DFS stack: (node, next-successor position).
        let mut work = vec![(root, 0usize)];
        while let Some(&mut (v, ref mut pos)) = work.last_mut() {
            if *pos == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = succ[v].get(*pos) {
                *pos += 1;
                if index[w] == usize::MAX {
                    work.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                work.pop();
                if let Some(&(parent, _)) = work.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut component = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack non-empty");
                        on_stack[w] = false;
                        component.push(w);
                        if w == v {
                            break;
                        }
                    }
                    component.sort_unstable();
                    if component.len() > 1 || succ[v].contains(&v) {
                        out.push(component);
                    }
                }
            }
        }
    }
    out
}

fn cycles(graph: &FlatGraph, report: &mut LintReport) {
    let succ = adjacency(graph);
    for component in sccs(&succ) {
        let in_scc = |k: usize| component.contains(&k);
        // Connectors carried around the cycle: produced and consumed inside.
        let mut cycle_connectors = Vec::new();
        let mut primed_by = None;
        for ci in 0..graph.connectors.len() {
            let c = ConnectorId::new(ci);
            if graph.connectors[ci].kind == PortKind::RuntimeParam {
                continue;
            }
            let producers = graph.producers_of(c);
            let consumed_inside = graph
                .consumers_of(c)
                .iter()
                .any(|e| in_scc(e.kernel.index()));
            if !consumed_inside || !producers.iter().any(|e| in_scc(e.kernel.index())) {
                continue;
            }
            cycle_connectors.push(c);
            // External token source: a global input merged into the cycle
            // connector, or a producer kernel outside the component.
            if graph.is_global_input(c) || producers.iter().any(|e| !in_scc(e.kernel.index())) {
                primed_by.get_or_insert(c);
            }
        }

        let members = component
            .iter()
            .map(|&k| graph.kernels[k].instance.as_str())
            .collect::<Vec<_>>()
            .join(" → ");
        let anchor = Anchor::Kernel {
            kernel: KernelId::new(component[0]),
        };
        match primed_by {
            None => report.push(Diagnostic::new(
                "CG020",
                Severity::Error,
                anchor,
                format!(
                    "feedback cycle {{{members}}} has no external token source on any cycle connector ({}); no kernel in the cycle can ever fire — guaranteed deadlock",
                    list(&cycle_connectors)
                ),
            )),
            Some(source) => {
                let buffering: u64 = cycle_connectors
                    .iter()
                    .map(|c| u64::from(graph.connectors[c.index()].settings.depth.max(1)))
                    .sum();
                report.push(Diagnostic::new(
                    "CG021",
                    Severity::Warn,
                    anchor,
                    format!(
                        "feedback cycle {{{members}}} relies on priming tokens arriving through {source}; verify the priming count and FIFO depths (explicit cycle buffering: {buffering} element{})",
                        if buffering == 1 { "" } else { "s" }
                    ),
                ));
            }
        }
    }
}

/// `CG022`: a stream channel narrower than one firing's token demand.
fn capacity(graph: &FlatGraph, cfg: &LintConfig, report: &mut LintReport) {
    for ci in 0..graph.connectors.len() {
        let c = ConnectorId::new(ci);
        let conn = &graph.connectors[ci];
        if conn.kind != PortKind::Stream {
            continue;
        }
        let cap = if conn.settings.depth != 0 {
            conn.settings.depth
        } else {
            cfg.effective_default_depth()
        };
        for e in graph
            .producers_of(c)
            .into_iter()
            .chain(graph.consumers_of(c))
        {
            let rate = port_rate(graph, cfg, e.kernel.index(), e.port);
            if u64::from(cap) < u64::from(rate) {
                let k = &graph.kernels[e.kernel.index()];
                report.push(Diagnostic::new(
                    "CG022",
                    Severity::Error,
                    Anchor::Port {
                        kernel: e.kernel,
                        port: e.port,
                    },
                    format!(
                        "channel {c} has capacity {cap} but port `{}.{}` moves {rate} elements per firing; the kernel can never complete a firing",
                        k.instance, k.ports[e.port].name
                    ),
                ));
            }
        }
    }
}

fn list(connectors: &[ConnectorId]) -> String {
    connectors
        .iter()
        .map(|c| c.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

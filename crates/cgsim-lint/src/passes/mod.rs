//! The lint passes.
//!
//! Pass order matters: [`structural`] re-checks the invariants of
//! [`FlatGraph::validate`] first and reports whether the descriptor is too
//! corrupted (out-of-range indices) for the deeper passes to run safely.
//! The remaining passes assume indices are in range but nothing else.

pub mod bounds;
pub mod budget;
pub mod deadlock;
pub mod rates;

use crate::config::LintConfig;
use crate::diag::{Anchor, Diagnostic, LintReport, Severity};
use cgsim_core::{ConnectorId, FlatGraph, GraphError, KernelId, PortDir, PortSettings};

/// Resolve the SDF rate (elements per firing) of one port: the port's own
/// declared rate wins, then a `kernel_rates` entry for the kernel kind, then
/// the SDF default of 1.
///
/// Public because the `cgsim-compiled` schedule compiler must size its
/// per-connector token bounds with exactly the rates the rate-balance pass
/// used — one resolution rule, two consumers.
pub fn port_rate(graph: &FlatGraph, cfg: &LintConfig, kernel: usize, port: usize) -> u32 {
    let k = &graph.kernels[kernel];
    let declared = k.ports[port].rate;
    if declared != 0 {
        return declared;
    }
    cfg.kernel_rates
        .get(&k.kind)
        .and_then(|rates| rates.get(port))
        .copied()
        .filter(|r| *r != 0)
        .unwrap_or(1)
}

/// Structural integrity: the `CG001`–`CG007` family, mirroring
/// [`FlatGraph::validate`] but collecting *all* findings instead of stopping
/// at the first. Returns `true` if an out-of-range index was found — the
/// descriptor is corrupt and later passes must not index into it.
pub(crate) fn structural(graph: &FlatGraph, report: &mut LintReport) -> bool {
    let ncon = graph.connectors.len();
    let mut fatal = false;
    let oob = |index: usize, report: &mut LintReport| {
        if index >= ncon {
            report.push(Diagnostic::from_graph_error(&GraphError::IdOutOfRange {
                what: "connector",
                index,
                len: ncon,
            }));
            true
        } else {
            false
        }
    };

    for id in graph.inputs.iter().chain(&graph.outputs) {
        fatal |= oob(id.index(), report);
    }
    for list in [&graph.inputs, &graph.outputs] {
        for (i, id) in list.iter().enumerate() {
            if list[..i].contains(id) {
                report.push(Diagnostic::from_graph_error(&GraphError::DuplicateGlobal {
                    connector: *id,
                }));
            }
        }
    }

    for (ki, k) in graph.kernels.iter().enumerate() {
        for (pi, p) in k.ports.iter().enumerate() {
            if oob(p.connector.index(), report) {
                fatal = true;
                continue;
            }
            let c = &graph.connectors[p.connector.index()];
            if !p.dtype.compatible(&c.dtype) {
                report.push(Diagnostic {
                    anchor: Anchor::Port {
                        kernel: KernelId::new(ki),
                        port: pi,
                    },
                    ..Diagnostic::from_graph_error(&GraphError::TypeMismatch {
                        kernel: k.instance.clone(),
                        port: p.name.clone(),
                        port_type: Box::new(p.dtype.clone()),
                        connector_type: Box::new(c.dtype.clone()),
                    })
                });
            }
        }
    }
    if fatal {
        return true;
    }

    for ci in 0..ncon {
        let c = ConnectorId::new(ci);
        let produced = !graph.producers_of(c).is_empty() || graph.is_global_input(c);
        let consumed = !graph.consumers_of(c).is_empty() || graph.is_global_output(c);
        if !produced {
            report.push(Diagnostic::from_graph_error(
                &GraphError::DanglingConnector { connector: c },
            ));
        }
        if !consumed {
            report.push(Diagnostic::from_graph_error(
                &GraphError::UnconsumedConnector { connector: c },
            ));
        }
        let endpoint_settings = graph.kernels.iter().flat_map(|k| {
            k.ports
                .iter()
                .filter(|p| p.connector == c)
                .map(|p| p.settings)
        });
        let merged = PortSettings::merge_all(endpoint_settings)
            .and_then(|m| m.merge(graph.connectors[ci].settings));
        if let Err(conflict) = merged {
            report.push(Diagnostic::from_graph_error(
                &GraphError::IncompatibleSettings {
                    connector: c,
                    conflict,
                },
            ));
        }
    }
    false
}

/// Per-kernel liveness computed by [`reachability`], shared with the shape
/// pass.
pub(crate) struct Reach {
    /// Kernel output can reach a global output (or the kernel is a sink).
    pub bwd: Vec<bool>,
}

/// Dead-code detection: `CG040` (kernel unreachable from the inputs) and
/// `CG041` (kernel output never reaches an output). Both are warnings —
/// such kernels execute (or silently never fire) but do no useful work.
pub(crate) fn reachability(graph: &FlatGraph, report: &mut LintReport) -> Reach {
    let nk = graph.kernels.len();
    let ncon = graph.connectors.len();

    // Forward: connectors fed from global inputs, kernels with a fed input
    // (or none at all), fixpoint.
    let mut con_live = vec![false; ncon];
    for c in &graph.inputs {
        con_live[c.index()] = true;
    }
    let mut fwd = vec![false; nk];
    loop {
        let mut changed = false;
        for (ki, k) in graph.kernels.iter().enumerate() {
            if fwd[ki] {
                continue;
            }
            let ins: Vec<_> = k.ports.iter().filter(|p| p.dir == PortDir::In).collect();
            if ins.is_empty() || ins.iter().any(|p| con_live[p.connector.index()]) {
                fwd[ki] = true;
                changed = true;
                for p in k.ports.iter().filter(|p| p.dir == PortDir::Out) {
                    con_live[p.connector.index()] = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Backward: connectors that drain to a global output, kernels with a
    // draining output (or none), fixpoint.
    let mut con_drains = vec![false; ncon];
    for c in &graph.outputs {
        con_drains[c.index()] = true;
    }
    let mut bwd = vec![false; nk];
    loop {
        let mut changed = false;
        for (ki, k) in graph.kernels.iter().enumerate() {
            if bwd[ki] {
                continue;
            }
            let outs: Vec<_> = k.ports.iter().filter(|p| p.dir == PortDir::Out).collect();
            if outs.is_empty() || outs.iter().any(|p| con_drains[p.connector.index()]) {
                bwd[ki] = true;
                changed = true;
                for p in k.ports.iter().filter(|p| p.dir == PortDir::In) {
                    con_drains[p.connector.index()] = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    for ki in 0..nk {
        let instance = &graph.kernels[ki].instance;
        if !fwd[ki] {
            report.push(Diagnostic::new(
                "CG040",
                Severity::Warn,
                Anchor::Kernel {
                    kernel: KernelId::new(ki),
                },
                format!("kernel `{instance}` is unreachable: no global input can feed any of its input ports, so it never fires"),
            ));
        }
        if !bwd[ki] {
            report.push(Diagnostic::new(
                "CG041",
                Severity::Warn,
                Anchor::Kernel {
                    kernel: KernelId::new(ki),
                },
                format!("nothing `{instance}` produces can reach a global output; the kernel's work is dead"),
            ));
        }
    }
    Reach { bwd }
}

/// Dataflow-shape warnings: `CG042` (broadcast fan-out feeding a dead
/// branch) and `CG043` (merge fan-in makes output order schedule-dependent,
/// so only multiset comparison is a sound oracle — exactly the distinction
/// `cgsim-check` draws between exact and multiset legs).
pub(crate) fn shape(graph: &FlatGraph, reach: &Reach, report: &mut LintReport) {
    for ci in 0..graph.connectors.len() {
        let c = ConnectorId::new(ci);
        if graph.connectors[ci].kind == cgsim_core::PortKind::RuntimeParam {
            continue;
        }
        let consumers = graph.consumers_of(c);
        let readers = consumers.len() + usize::from(graph.is_global_output(c));
        if readers > 1 {
            for e in &consumers {
                if !reach.bwd[e.kernel.index()] {
                    report.push(Diagnostic::new(
                        "CG042",
                        Severity::Warn,
                        Anchor::Port {
                            kernel: e.kernel,
                            port: e.port,
                        },
                        format!(
                            "broadcast fan-out of {c} feeds kernel `{}`, whose results cannot reach any global output — a dead branch that still consumes channel capacity",
                            graph.kernels[e.kernel.index()].instance
                        ),
                    ));
                }
            }
        }
        let writers = graph.producers_of(c).len() + usize::from(graph.is_global_input(c));
        if writers > 1 {
            report.push(Diagnostic::new(
                "CG043",
                Severity::Warn,
                Anchor::Connector { connector: c },
                format!(
                    "connector {c} merges {writers} producers: element arrival order is schedule-dependent, so only multiset output comparison is decidable"
                ),
            ));
        }
    }
}

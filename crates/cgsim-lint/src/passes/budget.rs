//! Realm-partition budget validation: the `CG05x` family.
//!
//! The paper places one AIE kernel per tile, window buffers in the tile's
//! 32 KiB data memory (doubled for ping-pong), and streams on the tile's
//! two-in/two-out stream-switch ports. Exceeding any of these is not a
//! style issue — `aiecompiler` would reject the design — so all three are
//! Error severity.

use crate::config::LintConfig;
use crate::diag::{Anchor, Diagnostic, LintReport, Severity};
use cgsim_core::{FlatGraph, KernelId, PortDir, PortKind, Realm};

/// Run the budget pass.
pub(crate) fn check(graph: &FlatGraph, cfg: &LintConfig, report: &mut LintReport) {
    let budgets = &cfg.budgets;

    let aie_kernels = graph
        .kernels
        .iter()
        .filter(|k| k.realm == Realm::Aie)
        .count();
    if aie_kernels > budgets.aie_tiles {
        report.push(Diagnostic::new(
            "CG050",
            Severity::Error,
            Anchor::Graph,
            format!(
                "graph places {aie_kernels} AIE kernels but the device has {} tiles (one kernel per tile)",
                budgets.aie_tiles
            ),
        ));
    }

    for (ki, k) in graph.kernels.iter().enumerate() {
        if k.realm != Realm::Aie {
            continue;
        }
        // Window memory: each window port owns a buffer in tile data memory;
        // ping-pong doubles it. Merged connector settings are authoritative.
        let window_bytes: u64 = k
            .ports
            .iter()
            .map(|p| {
                let s = &graph.connectors[p.connector.index()].settings;
                if PortKind::from_settings(s) == PortKind::Window {
                    u64::from(s.window_bytes) * if s.ping_pong { 2 } else { 1 }
                } else {
                    0
                }
            })
            .sum();
        if window_bytes > budgets.tile_data_bytes {
            report.push(Diagnostic::new(
                "CG051",
                Severity::Error,
                Anchor::Kernel {
                    kernel: KernelId::new(ki),
                },
                format!(
                    "kernel `{}` needs {window_bytes} bytes of window buffering but an AIE tile has {} bytes of data memory",
                    k.instance, budgets.tile_data_bytes
                ),
            ));
        }

        let streams = |dir: PortDir| {
            k.ports
                .iter()
                .filter(|p| {
                    p.dir == dir && graph.connectors[p.connector.index()].kind == PortKind::Stream
                })
                .count()
        };
        for (dir, used, budget) in [
            (PortDir::In, streams(PortDir::In), budgets.stream_in),
            (PortDir::Out, streams(PortDir::Out), budgets.stream_out),
        ] {
            if used > budget {
                report.push(Diagnostic::new(
                    "CG052",
                    Severity::Error,
                    Anchor::Kernel {
                        kernel: KernelId::new(ki),
                    },
                    format!(
                        "kernel `{}` uses {used} stream {dir}puts but an AIE core has {budget} stream {dir}put ports",
                        k.instance
                    ),
                ));
            }
        }
    }
}

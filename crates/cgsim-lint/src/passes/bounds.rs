//! Static occupancy and performance bounds: the `CG06x` family.
//!
//! For a rate-consistent graph (the `CG030` pass published a firing vector)
//! whose kernel dataflow is acyclic, this pass derives quantitative
//! predictions instead of mere safety verdicts:
//!
//! * per-connector token traffic per schedule period and the classic SDF
//!   minimal deadlock-free capacity `p + c − gcd(p, c)` (`CG060`, `CG061`),
//! * critical-path latency and steady-state throughput bounds over the
//!   period-unrolled firing DAG (`CG062`),
//! * and, given concrete feed lengths, the exact workload token traffic
//!   ([`workload_tokens`]), a per-connector worst-case occupancy bound
//!   ([`occupancy_bounds`]) and a whole-run cost estimate
//!   ([`cost_estimate`]).
//!
//! The structural results are attached to the report as
//! [`LintReport::bounds`] whenever they are derivable; the Info-level
//! `CG060`/`CG062`–`CG064` findings are only emitted when
//! [`LintConfig::emit_bounds`] is set, so default lint runs stay quiet on
//! clean graphs. `CG061` (a declared capacity below the minimal
//! deadlock-free bound) warns unconditionally.
//!
//! ## The occupancy bound
//!
//! [`occupancy_bounds`] answers "how full can connector `c` ever get?" as
//! the meet of two facts that hold for *every* schedule:
//!
//! * the runtime's send gate never lets buffered occupancy exceed the
//!   channel capacity while an open consumer exists, so `cap(c)` bounds it;
//! * occupancy never exceeds the total ever pushed, and by monotonicity of
//!   dataflow no schedule pushes more through `c` than the uncapacitated
//!   eager execution ([`workload_tokens`]) does.
//!
//! `min(cap(c), workload(c))` is therefore sound unconditionally (the
//! `cgsim-check` bounds oracle validates this against real traces on every
//! conformance run), and a schedule that demotes `c`'s consumers floods
//! `c` toward the bound, which the oracle's tightness leg exercises.
//! Refining below the meet is a trap: a frozen-consumer capacitated
//! fixpoint *under*-approximates, because running a consumer of `c` pops
//! one token from `c` yet can unblock an amplified refill chain through
//! its side inputs — net occupancy growth the adversary model misses.

use crate::config::LintConfig;
use crate::diag::{Anchor, Diagnostic, LintReport, Severity};
use crate::passes::port_rate;
use cgsim_core::schedule::{ConnectorBounds, CostEstimate, GraphBounds, Rational};
use cgsim_core::{ConnectorId, FlatGraph, KernelId, PortDir, PortKind, Topology};

/// Firings per period beyond which `CG064` flags the schedule as too large
/// for period-unrolled reasoning to stay cheaper than simulation.
const HUGE_PERIOD_FIRINGS: u64 = 100_000;

/// Run the bounds pass: attach [`GraphBounds`] to the report when
/// derivable and emit the `CG06x` findings.
pub(crate) fn check(graph: &FlatGraph, cfg: &LintConfig, report: &mut LintReport) {
    let Some(bounds) = graph_bounds(graph, cfg, report) else {
        if cfg.emit_bounds {
            report.push(Diagnostic::new(
                "CG063",
                Severity::Info,
                Anchor::Graph,
                "static bounds unavailable: the graph has no consistent firing vector or its \
                 kernel dataflow is cyclic",
            ));
        }
        return;
    };

    for (ci, b) in bounds.connectors.iter().enumerate() {
        let c = ConnectorId::new(ci);
        if graph.connectors[ci].kind != PortKind::Stream {
            continue;
        }
        // Below one firing's demand is already an Error (`CG022`); the
        // window between that and the SDF minimum merely *may* wedge,
        // depending on the schedule — warn.
        let demand = single_firing_demand(graph, cfg, ci);
        if b.effective_capacity >= demand && b.effective_capacity < b.min_capacity {
            report.push(Diagnostic::new(
                "CG061",
                Severity::Warn,
                Anchor::Connector { connector: c },
                format!(
                    "connector {c} has capacity {} but the minimal deadlock-free capacity for \
                     its rate signature is {}; some firing orders wedge on this channel",
                    b.effective_capacity, b.min_capacity
                ),
            ));
        }
        if cfg.emit_bounds {
            report.push(Diagnostic::new(
                "CG060",
                Severity::Info,
                Anchor::Connector { connector: c },
                format!(
                    "worst-case occupancy ≤ {} tokens (capacity-limited); {} tokens/period, \
                     minimal deadlock-free capacity {}",
                    b.effective_capacity, b.period_tokens, b.min_capacity
                ),
            ));
        }
    }

    if cfg.emit_bounds {
        report.push(Diagnostic::new(
            "CG062",
            Severity::Info,
            Anchor::Graph,
            format!(
                "critical path {} firings of {} per period; steady-state throughput ≤ {} \
                 output tokens per sequential firing",
                bounds.critical_path_firings, bounds.period_firings, bounds.throughput
            ),
        ));
        if bounds.period_firings > HUGE_PERIOD_FIRINGS {
            report.push(Diagnostic::new(
                "CG064",
                Severity::Info,
                Anchor::Graph,
                format!(
                    "schedule period needs {} kernel firings (> {HUGE_PERIOD_FIRINGS}); \
                     period-unrolled analysis at this scale may cost more than simulating",
                    bounds.period_firings
                ),
            ));
        }
    }

    report.bounds = Some(bounds);
}

/// Compute the structural [`GraphBounds`]: requires the rate pass to have
/// published a firing vector and the kernel dataflow to be acyclic.
fn graph_bounds(graph: &FlatGraph, cfg: &LintConfig, report: &LintReport) -> Option<GraphBounds> {
    let firing = report.firing_vector()?;
    if firing.len() != graph.kernels.len() {
        return None;
    }
    let order = acyclic_order(graph)?;

    let connectors: Vec<ConnectorBounds> = (0..graph.connectors.len())
        .map(|ci| {
            let c = ConnectorId::new(ci);
            let producers = graph.producers_of(c);
            // Tokens crossing the connector in one period: what its
            // producers emit; a purely externally fed connector admits the
            // demand of its hungriest consumer (the same basis the
            // schedule compiler uses).
            let produced: u64 = producers
                .iter()
                .map(|p| {
                    let rate = port_rate(graph, cfg, p.kernel.index(), p.port);
                    firing.count(p.kernel).saturating_mul(u64::from(rate))
                })
                .fold(0, u64::saturating_add);
            let period_tokens = if producers.is_empty() {
                graph
                    .consumers_of(c)
                    .iter()
                    .map(|q| {
                        let rate = port_rate(graph, cfg, q.kernel.index(), q.port);
                        firing.count(q.kernel).saturating_mul(u64::from(rate))
                    })
                    .max()
                    .unwrap_or(1)
                    .max(1)
            } else {
                produced
            };
            // Minimal deadlock-free capacity: the SDF single-edge bound
            // `p + c − gcd(p, c)`, over the hungriest consumer. A global
            // feed pushes element-wise (p = 1).
            let p_rate: u64 = producers
                .iter()
                .map(|p| u64::from(port_rate(graph, cfg, p.kernel.index(), p.port)))
                .max()
                .unwrap_or(1)
                .max(1);
            let min_capacity = graph
                .consumers_of(c)
                .iter()
                .map(|q| {
                    let q_rate = u64::from(port_rate(graph, cfg, q.kernel.index(), q.port));
                    p_rate + q_rate - gcd(p_rate, q_rate)
                })
                .max()
                .unwrap_or(p_rate);
            ConnectorBounds {
                period_tokens,
                min_capacity,
                effective_capacity: effective_capacity(graph, cfg, ci),
            }
        })
        .collect();

    // Critical path: node-weighted longest path over the kernel DAG, the
    // weight of a kernel being its firings per period — the length of the
    // longest sequential dependency chain one period must execute.
    let topo = Topology::of(graph);
    let mut chain = vec![0u64; graph.kernels.len()];
    for &k in &order {
        let ki = k.index();
        let longest_pred = topo.pred[ki]
            .iter()
            .map(|p| chain[p.index()])
            .max()
            .unwrap_or(0);
        chain[ki] = longest_pred.saturating_add(firing.count(k));
    }
    let critical_path_firings = chain.iter().copied().max().unwrap_or(0);
    let period_firings = firing.counts.iter().fold(0u64, |a, &b| a.saturating_add(b));

    let output_tokens: u64 = graph
        .outputs
        .iter()
        .map(|c| connectors[c.index()].period_tokens)
        .fold(0, u64::saturating_add);
    let throughput = Rational::new(output_tokens, critical_path_firings.max(1));

    Some(GraphBounds {
        connectors,
        period_firings,
        critical_path_firings,
        throughput,
    })
}

/// Exact per-connector token traffic for a concrete workload, by
/// propagating feed lengths through the kernel DAG in topological order:
/// a kernel fires as often as its scarcest token input allows, and each
/// firing emits its output rates. `feed_lens[i]` is the number of elements
/// fed to global input `i` (missing entries read as 0). `None` when the
/// kernel dataflow is cyclic.
///
/// This is the total ever *pushed* through each connector — an exact,
/// capacity-independent upper bound on its occupancy, and the figure the
/// compiled backend sizes its flat buffers from so that no write can ever
/// block.
pub fn workload_tokens(graph: &FlatGraph, cfg: &LintConfig, feed_lens: &[u64]) -> Option<Vec<u64>> {
    propagate(graph, cfg, feed_lens).map(|p| p.tokens)
}

/// Static cost estimate for running `graph` over the given feed lengths:
/// total tokens moved, total kernel firings, and a heuristic poll-count
/// prediction for the cooperative executor. `None` when the kernel
/// dataflow is cyclic.
pub fn cost_estimate(
    graph: &FlatGraph,
    cfg: &LintConfig,
    feed_lens: &[u64],
) -> Option<CostEstimate> {
    let p = propagate(graph, cfg, feed_lens)?;
    let tokens = p.tokens.iter().fold(0u64, |a, &b| a.saturating_add(b));
    let firings = p.firings.iter().fold(0u64, |a, &b| a.saturating_add(b));
    // One poll per firing, roughly a push poll and a pop poll per token,
    // plus setup/teardown per task (kernels + feed sources + sinks).
    let n_tasks = (graph.kernels.len() + graph.inputs.len() + graph.outputs.len()) as u64;
    let polls_hint = firings
        .saturating_add(tokens.saturating_mul(2))
        .saturating_add(n_tasks);
    Some(CostEstimate {
        tokens,
        firings,
        polls_hint,
    })
}

/// Worst-case runtime occupancy per connector for a concrete workload:
/// `min(capacity, total tokens ever pushed)`, where the push total comes
/// from the uncapacitated eager execution ([`workload_tokens`]) — the
/// schedule-independent maximum. `None` when the kernel dataflow is cyclic
/// or some kernel has no token input (its firing count, and hence its
/// push totals, cannot be bounded statically).
///
/// Sound for every schedule of the fault-free cooperative runtime: the
/// send gate keeps buffered occupancy at or below capacity whenever an
/// open consumer exists (and retires everything once none remain), and no
/// schedule pushes more than the eager total. Capacities are resolved
/// exactly as the runtime resolves them (declared `depth`, else
/// `cfg.effective_default_depth()`), so the bound is directly comparable
/// to `ChannelStats::max_occupancy`. Fault injection breaks the second
/// leg — replayed sends inflate push totals — so bounds must not be armed
/// on faulty runs.
pub fn occupancy_bounds(
    graph: &FlatGraph,
    cfg: &LintConfig,
    feed_lens: &[u64],
) -> Option<Vec<u64>> {
    if graph.kernels.iter().any(|k| {
        !k.ports
            .iter()
            .any(|p| p.dir == PortDir::In && carries_tokens(graph, p.connector))
    }) {
        return None;
    }
    let workload = workload_tokens(graph, cfg, feed_lens)?;
    Some(
        workload
            .iter()
            .enumerate()
            .map(|(ci, &tokens)| tokens.min(effective_capacity(graph, cfg, ci)))
            .collect(),
    )
}

/// Per-kernel firings and per-connector token totals of one uncapacitated
/// eager execution.
struct Propagated {
    tokens: Vec<u64>,
    firings: Vec<u64>,
}

fn propagate(graph: &FlatGraph, cfg: &LintConfig, feed_lens: &[u64]) -> Option<Propagated> {
    let order = acyclic_order(graph)?;
    let mut tokens = vec![0u64; graph.connectors.len()];
    for (i, c) in graph.inputs.iter().enumerate() {
        let fed = feed_lens.get(i).copied().unwrap_or(0);
        tokens[c.index()] = tokens[c.index()].saturating_add(fed);
    }
    let mut firings = vec![0u64; graph.kernels.len()];
    for &k in &order {
        let ki = k.index();
        let kernel = &graph.kernels[ki];
        // Broadcast gives every consumer the full stream, so each in-port
        // sees the connector's total. Kernels without token inputs never
        // fire here: nothing bounds them statically.
        let f = kernel
            .ports
            .iter()
            .enumerate()
            .filter(|(_, p)| p.dir == PortDir::In && carries_tokens(graph, p.connector))
            .map(|(pi, p)| {
                tokens[p.connector.index()] / u64::from(port_rate(graph, cfg, ki, pi).max(1))
            })
            .min()
            .unwrap_or(0);
        firings[ki] = f;
        for (pi, p) in kernel.ports.iter().enumerate() {
            if p.dir == PortDir::Out {
                let out = f.saturating_mul(u64::from(port_rate(graph, cfg, ki, pi)));
                let t = &mut tokens[p.connector.index()];
                *t = t.saturating_add(out);
            }
        }
    }
    Some(Propagated { tokens, firings })
}

/// Whether a connector carries firing tokens (runtime parameters do not).
fn carries_tokens(graph: &FlatGraph, c: ConnectorId) -> bool {
    graph.connectors[c.index()].kind != PortKind::RuntimeParam
}

/// The channel capacity the cooperative runtime will allocate for
/// connector `ci`: its declared `depth`, else the configured default.
fn effective_capacity(graph: &FlatGraph, cfg: &LintConfig, ci: usize) -> u64 {
    let depth = graph.connectors[ci].settings.depth;
    u64::from(if depth != 0 {
        depth
    } else {
        cfg.effective_default_depth()
    })
}

/// The largest single-firing token demand any endpoint places on `ci` —
/// the threshold below which `CG022` already reports an Error.
fn single_firing_demand(graph: &FlatGraph, cfg: &LintConfig, ci: usize) -> u64 {
    let c = ConnectorId::new(ci);
    graph
        .producers_of(c)
        .into_iter()
        .chain(graph.consumers_of(c))
        .map(|e| u64::from(port_rate(graph, cfg, e.kernel.index(), e.port)))
        .max()
        .unwrap_or(1)
}

/// Kahn topological order over the kernel dataflow; `None` on a cycle.
fn acyclic_order(graph: &FlatGraph) -> Option<Vec<KernelId>> {
    let topo = Topology::of(graph);
    let n = topo.succ.len();
    let mut indegree: Vec<usize> = topo.pred.iter().map(Vec::len).collect();
    let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(k) = ready.pop() {
        order.push(KernelId::new(k));
        for s in &topo.succ[k] {
            indegree[s.index()] -= 1;
            if indegree[s.index()] == 0 {
                ready.push(s.index());
            }
        }
    }
    (order.len() == n).then_some(order)
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a.max(1)
}

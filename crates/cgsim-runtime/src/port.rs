//! Kernel-side streaming I/O ports (§3.3).
//!
//! These are the Rust equivalents of the paper's `KernelReadPort<T>` and
//! `KernelWritePort<T>`: the only interface a kernel body uses to touch the
//! outside world. `get`/`put` are `async` — the analogue of the paper's
//! `co_await port.get()` — and suspend the kernel coroutine while the
//! underlying queue is empty/full.
//!
//! Window helpers ([`KernelReadPort::get_window`],
//! [`KernelWritePort::put_window`]) model AIE window/ping-pong buffer ports:
//! a whole block is acquired or released per iteration.

use crate::channel::{Consumer, Producer};
use cgsim_core::StreamData;

/// Kernel input port: reads a stream of `T`.
pub struct KernelReadPort<T: StreamData> {
    consumer: Consumer<T>,
}

impl<T: StreamData> KernelReadPort<T> {
    pub(crate) fn new(consumer: Consumer<T>) -> Self {
        KernelReadPort { consumer }
    }

    /// Receive the next element; `None` once the stream is closed and
    /// drained. The paper's `co_await in.get()`.
    pub async fn get(&mut self) -> Option<T> {
        self.consumer.recv().await
    }

    /// Receive a full window of `n` elements (AIE window port acquire).
    ///
    /// Returns `None` if the stream ends before a *complete* window is
    /// available; a trailing partial block is discarded, matching hardware
    /// window semantics where a kernel only fires on full buffers.
    pub async fn get_window(&mut self, n: usize) -> Option<Vec<T>> {
        let mut window = Vec::with_capacity(n);
        for _ in 0..n {
            match self.consumer.recv().await {
                Some(v) => window.push(v),
                None => return None,
            }
        }
        Some(window)
    }
}

/// Kernel output port: writes a stream of `T`.
pub struct KernelWritePort<T: StreamData> {
    producer: Producer<T>,
}

impl<T: StreamData> KernelWritePort<T> {
    pub(crate) fn new(producer: Producer<T>) -> Self {
        KernelWritePort { producer }
    }

    /// Send one element, suspending while the queue is full. The paper's
    /// `co_await out.put(v)`.
    pub async fn put(&mut self, value: T) {
        self.producer.send(value).await;
    }

    /// Send a full window of elements (AIE window port release).
    pub async fn put_window(&mut self, window: impl IntoIterator<Item = T>) {
        for v in window {
            self.producer.send(v).await;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::Channel;
    use crate::executor::block_on;

    #[test]
    fn get_put_roundtrip() {
        let chan = Channel::new(4);
        let mut out = KernelWritePort::new(chan.add_producer());
        let mut inp = KernelReadPort::new(chan.add_consumer());
        block_on(async {
            out.put(7u32).await;
            out.put(8u32).await;
            drop(out);
            assert_eq!(inp.get().await, Some(7));
            assert_eq!(inp.get().await, Some(8));
            assert_eq!(inp.get().await, None);
        });
    }

    #[test]
    fn window_acquire_full_blocks_only() {
        let chan = Channel::new(16);
        let mut out = KernelWritePort::new(chan.add_producer());
        let mut inp = KernelReadPort::new(chan.add_consumer());
        block_on(async {
            out.put_window(0..10u32).await;
            drop(out);
            assert_eq!(inp.get_window(4).await, Some(vec![0, 1, 2, 3]));
            assert_eq!(inp.get_window(4).await, Some(vec![4, 5, 6, 7]));
            // Only 2 elements remain: partial window → None.
            assert_eq!(inp.get_window(4).await, None);
        });
    }
}

//! Kernel-side streaming I/O ports (§3.3).
//!
//! These are the Rust equivalents of the paper's `KernelReadPort<T>` and
//! `KernelWritePort<T>`: the only interface a kernel body uses to touch the
//! outside world. `get`/`put` are `async` — the analogue of the paper's
//! `co_await port.get()` — and suspend the kernel coroutine while the
//! underlying queue is empty/full.
//!
//! Window helpers ([`KernelReadPort::get_window`],
//! [`KernelWritePort::put_window`]) model AIE window/ping-pong buffer ports:
//! a whole block is acquired or released per iteration.

use crate::channel::{Consumer, Producer};
use cgsim_core::StreamData;

/// Kernel input port: reads a stream of `T`.
pub struct KernelReadPort<T: StreamData> {
    consumer: Consumer<T>,
}

impl<T: StreamData> KernelReadPort<T> {
    pub(crate) fn new(consumer: Consumer<T>) -> Self {
        KernelReadPort { consumer }
    }

    /// Receive the next element; `None` once the stream is closed and
    /// drained. The paper's `co_await in.get()`.
    pub async fn get(&mut self) -> Option<T> {
        self.consumer.recv().await
    }

    /// Receive a full window of `n` elements (AIE window port acquire).
    ///
    /// Returns `None` if the stream ends before a *complete* window is
    /// available; a trailing partial block is discarded, matching hardware
    /// window semantics where a kernel only fires on full buffers.
    pub async fn get_window(&mut self, n: usize) -> Option<Vec<T>> {
        self.read_window(n).await
    }

    /// Batched window acquire: accumulates `n` elements via
    /// [`Consumer::pop_chunk`], draining whatever is available per channel
    /// acquisition instead of one element at a time. Same contract as
    /// [`KernelReadPort::get_window`] — a trailing partial window yields
    /// `None`.
    pub async fn read_window(&mut self, n: usize) -> Option<Vec<T>> {
        if n == 0 {
            return Some(Vec::new());
        }
        let mut window = Vec::with_capacity(n);
        while window.len() < n {
            match self.consumer.pop_chunk(n - window.len()).await {
                Some(mut chunk) => window.append(&mut chunk),
                None => return None,
            }
        }
        Some(window)
    }
}

/// Kernel output port: writes a stream of `T`.
pub struct KernelWritePort<T: StreamData> {
    producer: Producer<T>,
}

impl<T: StreamData> KernelWritePort<T> {
    pub(crate) fn new(producer: Producer<T>) -> Self {
        KernelWritePort { producer }
    }

    /// Send one element, suspending while the queue is full. The paper's
    /// `co_await out.put(v)`.
    pub async fn put(&mut self, value: T) {
        self.producer.send(value).await;
    }

    /// Send a full window of elements (AIE window port release). Batched:
    /// the whole window moves through [`Producer::push_slice`], waking
    /// consumers once per batch rather than once per element.
    pub async fn put_window(&mut self, window: impl IntoIterator<Item = T>) {
        self.write_window(window.into_iter().collect()).await;
    }

    /// Batched window release from an owned buffer — the zero-adaptor form
    /// of [`KernelWritePort::put_window`].
    pub async fn write_window(&mut self, window: Vec<T>) {
        self.producer.push_slice(window).await;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::Channel;
    use crate::executor::block_on;

    #[test]
    fn get_put_roundtrip() {
        let chan = Channel::new(4);
        let mut out = KernelWritePort::new(chan.add_producer());
        let mut inp = KernelReadPort::new(chan.add_consumer());
        block_on(async {
            out.put(7u32).await;
            out.put(8u32).await;
            drop(out);
            assert_eq!(inp.get().await, Some(7));
            assert_eq!(inp.get().await, Some(8));
            assert_eq!(inp.get().await, None);
        });
    }

    #[test]
    fn windows_larger_than_capacity_stream_through() {
        use crate::channel::ChannelMode;
        use crate::executor::Executor;
        use std::cell::RefCell;
        use std::rc::Rc;
        // A 16-element window over a 4-deep fast-path channel: the batched
        // futures must make partial progress per poll and hand off
        // cooperatively, not deadlock.
        let chan = Channel::with_mode(4, ChannelMode::SingleThread);
        let mut out = KernelWritePort::new(chan.add_producer());
        let mut inp = KernelReadPort::new(chan.add_consumer());
        let mut ex = Executor::new();
        ex.spawn(
            "writer",
            Box::pin(async move {
                for base in 0..4u32 {
                    out.write_window((0..16).map(|i| base * 16 + i).collect())
                        .await;
                }
            }),
        );
        let got = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&got);
        ex.spawn(
            "reader",
            Box::pin(async move {
                while let Some(w) = inp.read_window(16).await {
                    sink.borrow_mut().extend(w);
                }
            }),
        );
        let (_, stalled) = ex.run();
        assert!(stalled.is_empty(), "windowed pipeline deadlocked");
        assert_eq!(*got.borrow(), (0..64).collect::<Vec<u32>>());
    }

    #[test]
    fn window_acquire_full_blocks_only() {
        let chan = Channel::new(16);
        let mut out = KernelWritePort::new(chan.add_producer());
        let mut inp = KernelReadPort::new(chan.add_consumer());
        block_on(async {
            out.put_window(0..10u32).await;
            drop(out);
            assert_eq!(inp.get_window(4).await, Some(vec![0, 1, 2, 3]));
            assert_eq!(inp.get_window(4).await, Some(vec![4, 5, 6, 7]));
            // Only 2 elements remain: partial window → None.
            assert_eq!(inp.get_window(4).await, None);
        });
    }
}

//! `RunSpec` — the unified launch API.
//!
//! Before this module existed every entry point grew its own launch matrix:
//! `cgsim-graphs` dispatched on an ad-hoc `Runtime` enum, the conformance
//! oracle assembled `RuntimeConfig` literals per leg, the bench harness
//! hard-coded channel/profiling pairs, and `aie-sim` split deployment into
//! checked/unchecked functions. [`RunSpec`] subsumes all of them: one
//! chainable builder naming the run, choosing the backend, and carrying the
//! full [`RuntimeConfig`] plus an optional wall-clock deadline budget.
//!
//! ```
//! use cgsim_runtime::{Profiling, RunSpec, Schedule, VerifyPolicy};
//! use std::time::Duration;
//!
//! let spec = RunSpec::for_graph("bitonic")
//!     .schedule(Schedule::Seeded(42))
//!     .profiling(Profiling::Full)
//!     .verify(VerifyPolicy::Warn)
//!     .deadline(Duration::from_secs(2));
//! assert_eq!(spec.label(), "bitonic");
//! assert_eq!(spec.config().schedule, Schedule::Seeded(42));
//! ```
//!
//! [`RuntimeContext::from_spec`](crate::RuntimeContext::from_spec) launches
//! a cooperative run directly from a spec; `cgsim-graphs::support` adds the
//! [`Backend::Threaded`] dispatch; `cgsim-pool` executes whole batches of
//! specs on a worker pool.

use crate::channel::ChannelMode;
use crate::context::{RuntimeConfig, VerifyPolicy};
use crate::executor::{FaultPlan, Profiling, Schedule};
use cgsim_core::CostEstimate;
use std::time::Duration;

/// Which execution engine a [`RunSpec`] targets.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(rename_all = "snake_case"))]
pub enum Backend {
    /// The cooperative single-threaded simulator (`cgsim`, the paper's
    /// primary engine).
    #[default]
    Cooperative,
    /// The thread-per-kernel functional simulator (`cgsim-threads`, the
    /// paper's x86sim comparison point). Only `default_depth` of the
    /// runtime configuration applies; schedule, faults, profiling and
    /// deadline are cooperative-engine concepts.
    Threaded,
    /// The compiled static-schedule engine (`cgsim-compiled`): kernels run
    /// in a precompiled topological order over buffers sized ahead of run
    /// from the SDF firing vector — no ready queue, no wake bookkeeping.
    /// Only statically schedulable graphs (merge-free, rate-balanced,
    /// acyclic, fault-free) compile; dispatchers fall back to
    /// [`Backend::Cooperative`] for the rest. The schedule policy and
    /// fault plan of the runtime configuration do not apply.
    Compiled,
}

/// A complete, self-contained description of one simulation run: label,
/// backend, runtime configuration and deadline budget.
///
/// Cheap to clone and `Send`, so one spec can parameterise many instances
/// (the `cgsim-pool` batch engine submits one job per spec).
#[derive(Clone, Debug)]
pub struct RunSpec {
    label: String,
    backend: Backend,
    config: RuntimeConfig,
    deadline: Option<Duration>,
    cost: Option<CostEstimate>,
}

impl Default for RunSpec {
    /// An unnamed cooperative run under the default configuration.
    fn default() -> Self {
        RunSpec::for_graph("run")
    }
}

impl RunSpec {
    /// Start a spec for the graph (or workload) called `label`. The label
    /// names the run in pool reports, trace lanes and diagnostics; it does
    /// not have to match the graph's own name.
    pub fn for_graph(label: impl Into<String>) -> Self {
        RunSpec {
            label: label.into(),
            backend: Backend::Cooperative,
            config: RuntimeConfig::default(),
            deadline: None,
            cost: None,
        }
    }

    /// Select the execution backend.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Set the scheduler's ready-list policy.
    pub fn schedule(mut self, schedule: Schedule) -> Self {
        self.config = self.config.with_schedule(schedule);
        self
    }

    /// Set the channel storage policy.
    pub fn channels(mut self, mode: ChannelMode) -> Self {
        self.config = self.config.with_channels(mode);
        self
    }

    /// Set the per-poll timing mode.
    pub fn profiling(mut self, profiling: Profiling) -> Self {
        self.config = self.config.with_profiling(profiling);
        self
    }

    /// Set the ahead-of-run lint-gate policy.
    pub fn verify(mut self, policy: VerifyPolicy) -> Self {
        self.config = self.config.with_verify(policy);
        self
    }

    /// Enable seeded fault injection.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.config = self.config.with_faults(plan);
        self
    }

    /// Give the run a wall-clock budget. The clock starts when the run (not
    /// the spec) is created; under `cgsim-pool` it starts at job submission,
    /// so time spent queued counts against the budget.
    pub fn deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// Bound total scheduler polls (safety valve against busy-yield loops).
    pub fn max_polls(mut self, budget: u64) -> Self {
        self.config = self.config.with_max_polls(budget);
        self
    }

    /// Set the default channel capacity for connectors without an explicit
    /// `depth`.
    pub fn default_depth(mut self, depth: usize) -> Self {
        self.config = self.config.with_default_depth(depth);
        self
    }

    /// Replace the embedded runtime configuration wholesale — the bridge
    /// for callers that already hold a [`RuntimeConfig`].
    pub fn with_config(mut self, config: RuntimeConfig) -> Self {
        self.config = config;
        self
    }

    /// Attach a static cost estimate (tokens, firings, predicted polls) for
    /// this run, as computed by `cgsim-lint`'s `cost_estimate` over the
    /// graph and concrete feed lengths. Purely advisory for direct runs;
    /// `cgsim-pool` uses it as an admission-control signal when a
    /// per-job cost limit is configured.
    pub fn cost_estimate(mut self, cost: CostEstimate) -> Self {
        self.cost = Some(cost);
        self
    }

    /// The attached static cost estimate, if any.
    pub fn cost(&self) -> Option<CostEstimate> {
        self.cost
    }

    /// The run's display label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The backend this spec targets (set with [`RunSpec::backend`]).
    pub fn target(&self) -> Backend {
        self.backend
    }

    /// The embedded runtime configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// The wall-clock budget, if one was set with [`RunSpec::deadline`].
    pub fn deadline_budget(&self) -> Option<Duration> {
        self.deadline
    }
}

// Versioned wire format for `RunSpec` (the `cgsim-serve` request schema).
// Hand-written so absent fields fall back to builder defaults and the
// deadline crosses the wire as integer nanoseconds rather than an opaque
// `Duration` encoding.
#[cfg(feature = "serde")]
mod wire {
    use super::RunSpec;
    use serde::{get_field, DeError, Deserialize, Serialize, Value};
    use std::time::Duration;

    impl Serialize for RunSpec {
        fn to_value(&self) -> Value {
            Value::Object(vec![
                ("label".to_string(), self.label.to_value()),
                ("backend".to_string(), self.backend.to_value()),
                ("config".to_string(), self.config.to_value()),
                (
                    "deadline_ns".to_string(),
                    self.deadline.map(|d| d.as_nanos() as u64).to_value(),
                ),
                ("cost".to_string(), self.cost.to_value()),
            ])
        }
    }

    impl Deserialize for RunSpec {
        fn from_value(v: &Value) -> Result<Self, DeError> {
            let Value::Object(obj) = v else {
                return Err(DeError::expected("object", "RunSpec"));
            };
            let mut spec = RunSpec::default();
            if let Some(v) = get_field(obj, "label") {
                spec.label = Deserialize::from_value(v)?;
            }
            if let Some(v) = get_field(obj, "backend") {
                spec.backend = Deserialize::from_value(v)?;
            }
            if let Some(v) = get_field(obj, "config") {
                spec.config = Deserialize::from_value(v)?;
            }
            if let Some(v) = get_field(obj, "deadline_ns") {
                let ns: Option<u64> = Deserialize::from_value(v)?;
                spec.deadline = ns.map(Duration::from_nanos);
            }
            if let Some(v) = get_field(obj, "cost") {
                spec.cost = Deserialize::from_value(v)?;
            }
            Ok(spec)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain_covers_every_axis() {
        let spec = RunSpec::for_graph("g")
            .backend(Backend::Threaded)
            .schedule(Schedule::Lifo)
            .channels(ChannelMode::Shared)
            .profiling(Profiling::Off)
            .verify(VerifyPolicy::Off)
            .faults(FaultPlan::new(7, 25))
            .deadline(Duration::from_millis(250))
            .max_polls(1_000)
            .default_depth(8);
        assert_eq!(spec.label(), "g");
        assert_eq!(spec.target(), Backend::Threaded);
        let cfg = spec.config();
        assert_eq!(cfg.schedule, Schedule::Lifo);
        assert_eq!(cfg.channels, ChannelMode::Shared);
        assert_eq!(cfg.profiling, Profiling::Off);
        assert_eq!(cfg.verify, VerifyPolicy::Off);
        assert_eq!(cfg.faults, Some(FaultPlan::new(7, 25)));
        assert_eq!(cfg.max_polls, Some(1_000));
        assert_eq!(cfg.default_depth, 8);
        assert_eq!(spec.deadline_budget(), Some(Duration::from_millis(250)));
    }

    #[test]
    fn default_spec_matches_default_config() {
        let spec = RunSpec::default();
        assert_eq!(spec.target(), Backend::Cooperative);
        assert_eq!(spec.deadline_budget(), None);
        let d = RuntimeConfig::default();
        let c = spec.config();
        assert_eq!(c.schedule, d.schedule);
        assert_eq!(c.channels, d.channels);
        assert_eq!(c.verify, d.verify);
        assert_eq!(c.default_depth, d.default_depth);
    }

    #[test]
    fn with_config_replaces_wholesale() {
        let cfg = RuntimeConfig::default()
            .with_max_polls(99)
            .with_schedule(Schedule::Seeded(3));
        let spec = RunSpec::for_graph("x").with_config(cfg);
        assert_eq!(spec.config().max_polls, Some(99));
        assert_eq!(spec.config().schedule, Schedule::Seeded(3));
    }

    #[cfg(feature = "serde")]
    #[test]
    fn wire_round_trip_preserves_every_axis() {
        let spec = RunSpec::for_graph("wire")
            .backend(Backend::Compiled)
            .schedule(Schedule::Seeded(11))
            .channels(ChannelMode::Shared)
            .profiling(Profiling::Full)
            .verify(VerifyPolicy::Warn)
            .faults(FaultPlan::new(3, 10))
            .deadline(Duration::from_millis(125))
            .max_polls(4_096)
            .default_depth(16);
        let json = serde_json::to_string(&spec).expect("serialize");
        let back: RunSpec = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.label(), spec.label());
        assert_eq!(back.target(), spec.target());
        assert_eq!(back.deadline_budget(), spec.deadline_budget());
        let (a, b) = (back.config(), spec.config());
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.channels, b.channels);
        assert_eq!(a.profiling, b.profiling);
        assert_eq!(a.verify, b.verify);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.max_polls, b.max_polls);
        assert_eq!(a.default_depth, b.default_depth);
    }

    #[cfg(feature = "serde")]
    #[test]
    fn wire_absent_fields_fall_back_to_defaults() {
        let spec: RunSpec = serde_json::from_str(r#"{"label":"sparse"}"#).expect("deserialize");
        assert_eq!(spec.label(), "sparse");
        assert_eq!(spec.target(), Backend::Cooperative);
        assert_eq!(spec.deadline_budget(), None);
        assert_eq!(spec.config().default_depth, 64);
        assert_eq!(spec.config().verify, VerifyPolicy::Deny);
    }
}

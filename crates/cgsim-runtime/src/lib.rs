//! # cgsim-runtime — cooperative compute-graph simulation runtime
//!
//! The execution half of cgsim (§3.6–3.9 of the paper): kernels defined with
//! [`compute_kernel!`] are simulated as cooperatively multitasked coroutines
//! on a single shared thread, exchanging data through fixed-capacity MPMC
//! broadcast queues. A [`RuntimeContext`] re-instantiates a flattened graph
//! ([`cgsim_core::FlatGraph`]) on the runtime heap, attaches user-supplied
//! data sources and sinks to the graph's global I/O, and runs the embedded
//! scheduler to quiescence.
//!
//! ```
//! use cgsim_runtime::{compute_kernel, KernelLibrary, RuntimeConfig, RuntimeContext};
//! use cgsim_core::GraphBuilder;
//!
//! compute_kernel! {
//!     /// Paper Figure 3: adds pairs of values from two input streams.
//!     #[realm(aie)]
//!     pub fn adder_kernel(in1: ReadPort<f32>, in2: ReadPort<f32>, out: WritePort<f32>) {
//!         loop {
//!             let (Some(a), Some(b)) = (in1.get().await, in2.get().await) else { break };
//!             out.put(a + b).await;
//!         }
//!     }
//! }
//!
//! let graph = GraphBuilder::build("sum", |g| {
//!     let a = g.input::<f32>("a");
//!     let b = g.input::<f32>("b");
//!     let s = g.wire::<f32>();
//!     adder_kernel::invoke(g, &a, &b, &s)?;
//!     g.output(&s);
//!     Ok(())
//! }).unwrap();
//!
//! let lib = KernelLibrary::with(|l| { l.register::<adder_kernel>(); });
//! let mut ctx = RuntimeContext::new(&graph, &lib, RuntimeConfig::default()).unwrap();
//! ctx.feed(0, vec![1.0f32, 2.0]).unwrap();
//! ctx.feed(1, vec![10.0f32, 20.0]).unwrap();
//! let out = ctx.collect::<f32>(0).unwrap();
//! let report = ctx.run().unwrap();
//! assert!(report.drained());
//! assert_eq!(out.take(), vec![11.0, 22.0]);
//! ```

#![warn(missing_docs)]

pub mod channel;
pub mod context;
pub mod executor;
pub mod library;
#[macro_use]
pub mod macros;
pub mod port;
pub mod probe;
pub mod spec;

// Re-exported so `compute_kernel!` expansions can reach core types through
// `$crate`.
pub use cgsim_core;

pub use cgsim_trace;
pub use channel::{Channel, ChannelAdmin, ChannelMode, ChannelStats, Consumer, Producer};
pub use context::{RunReport, RuntimeConfig, RuntimeContext, SinkHandle, VerifyPolicy};
pub use executor::{
    block_on, BoundsCheck, BoundsViolation, CancelToken, ExecStats, Executor, FaultPlan,
    FifoPolicy, Interrupt, LifoPolicy, LocalBoxFuture, Profiling, Schedule, SchedulePolicy,
    SeededPolicy, TaskProfile,
};
pub use library::{AnyChannel, KernelEntry, KernelImpl, KernelLibrary, PortBinder};
pub use port::{KernelReadPort, KernelWritePort};
pub use probe::{ChannelOccupancy, DebugSnapshot, ExecProbe, Introspector, WaitKind, WaitsForEdge};
pub use spec::{Backend, RunSpec};

//! Runtime graph instantiation and execution (§3.6–3.8).
//!
//! The [`RuntimeContext`] is the paper's runtime deserializer: it takes the
//! flattened graph produced at construction time, recreates all I/O channels
//! from the serialized descriptors, instantiates every kernel through the
//! registry, and connects global inputs/outputs to user-supplied data
//! sources and sinks (specialized coroutines, §3.7). [`RuntimeContext::run`]
//! then drives the embedded cooperative scheduler to quiescence and returns
//! a [`RunReport`].

use crate::channel::{Channel, ChannelMode, ChannelStats};
use crate::executor::{
    BoundsCheck, BoundsViolation, CancelToken, ExecStats, Executor, FaultPlan, Interrupt,
    Profiling, Schedule, SchedulePolicy,
};
use crate::library::{AnyChannel, KernelLibrary, PortBinder};
use crate::probe::{ExecProbe, Introspector};
use crate::spec::RunSpec;
use cgsim_core::{ConnectorId, FlatGraph, GraphError, PortDir, StreamData};
use cgsim_trace::{TraceSnapshot, Tracer};
use std::sync::{Arc, Mutex};
use std::time::Instant;

// The lint-gate policy lives in `cgsim-lint` (it is shared with `aie-sim`'s
// deployment gate); re-exported here so existing
// `cgsim_runtime::VerifyPolicy` paths keep working.
pub use cgsim_lint::VerifyPolicy;

/// Tunables for a simulation run.
///
/// Marked `#[non_exhaustive]`: construct it with [`RuntimeConfig::default`]
/// (or the higher-level [`RunSpec`] builder) and
/// adjust fields through the `with_*` setters, so new tunables stop being
/// breaking changes for downstream crates.
#[derive(Clone, Copy, Debug)]
#[non_exhaustive]
pub struct RuntimeConfig {
    /// Channel capacity (elements) for connectors that do not specify an
    /// explicit `depth` in their merged settings.
    pub default_depth: usize,
    /// Optional bound on total scheduler polls: a safety valve against
    /// kernels that busy-yield forever. `None` = run to quiescence.
    pub max_polls: Option<u64>,
    /// Ready-list policy for the embedded scheduler. The default FIFO is
    /// the paper's deterministic baseline; [`Schedule::Seeded`] replays an
    /// alternative interleaving identified by its seed.
    pub schedule: Schedule,
    /// Optional seeded fault injection (forced stalls / wake reordering).
    pub faults: Option<FaultPlan>,
    /// Ahead-of-run `cgsim-lint` gate on Error diagnostics (deny by
    /// default; see [`VerifyPolicy`]).
    pub verify: VerifyPolicy,
    /// Channel storage policy. The cooperative context is single-threaded
    /// by construction (`!Send`), so the uncontended
    /// [`ChannelMode::SingleThread`] fast path is the default;
    /// [`ChannelMode::Shared`] restores the mutex-guarded pre-optimisation
    /// behaviour (and is what `cgsim-threads` uses).
    pub channels: ChannelMode,
    /// Per-poll timing mode for the embedded scheduler; see [`Profiling`].
    /// Defaults to `Profiling::Sampled(64)`.
    pub profiling: Profiling,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            default_depth: 64,
            max_polls: None,
            schedule: Schedule::Fifo,
            faults: None,
            verify: VerifyPolicy::Deny,
            channels: ChannelMode::SingleThread,
            profiling: Profiling::default(),
        }
    }
}

// Hand-written wire impls: the derive cannot express "absent field means
// the documented default" for a `#[non_exhaustive]` config whose defaults
// are not `Default::default()` of each field type, and starting from
// `RuntimeConfig::default()` keeps old payloads valid as tunables grow.
#[cfg(feature = "serde")]
mod config_wire {
    use super::RuntimeConfig;
    use serde::{get_field, DeError, Deserialize, Serialize, Value};

    impl Serialize for RuntimeConfig {
        fn to_value(&self) -> Value {
            Value::Object(vec![
                ("default_depth".to_string(), self.default_depth.to_value()),
                ("max_polls".to_string(), self.max_polls.to_value()),
                ("schedule".to_string(), self.schedule.to_value()),
                ("faults".to_string(), self.faults.to_value()),
                ("verify".to_string(), self.verify.to_value()),
                ("channels".to_string(), self.channels.to_value()),
                ("profiling".to_string(), self.profiling.to_value()),
            ])
        }
    }

    impl Deserialize for RuntimeConfig {
        fn from_value(v: &Value) -> Result<Self, DeError> {
            let Value::Object(obj) = v else {
                return Err(DeError::expected("object", "RuntimeConfig"));
            };
            let mut cfg = RuntimeConfig::default();
            if let Some(v) = get_field(obj, "default_depth") {
                cfg.default_depth = Deserialize::from_value(v)?;
            }
            if let Some(v) = get_field(obj, "max_polls") {
                cfg.max_polls = Deserialize::from_value(v)?;
            }
            if let Some(v) = get_field(obj, "schedule") {
                cfg.schedule = Deserialize::from_value(v)?;
            }
            if let Some(v) = get_field(obj, "faults") {
                cfg.faults = Deserialize::from_value(v)?;
            }
            if let Some(v) = get_field(obj, "verify") {
                cfg.verify = Deserialize::from_value(v)?;
            }
            if let Some(v) = get_field(obj, "channels") {
                cfg.channels = Deserialize::from_value(v)?;
            }
            if let Some(v) = get_field(obj, "profiling") {
                cfg.profiling = Deserialize::from_value(v)?;
            }
            Ok(cfg)
        }
    }
}

impl RuntimeConfig {
    /// The default configuration running under `schedule`.
    pub fn scheduled(schedule: Schedule) -> Self {
        RuntimeConfig::default().with_schedule(schedule)
    }

    /// Set the default channel capacity (elements) for connectors without an
    /// explicit `depth`.
    pub fn with_default_depth(mut self, depth: usize) -> Self {
        self.default_depth = depth;
        self
    }

    /// Bound total scheduler polls (safety valve against busy-yield loops).
    pub fn with_max_polls(mut self, budget: u64) -> Self {
        self.max_polls = Some(budget);
        self
    }

    /// Set the ready-list schedule policy.
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Enable seeded fault injection.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Set the ahead-of-run lint-gate policy.
    pub fn with_verify(mut self, policy: VerifyPolicy) -> Self {
        self.verify = policy;
        self
    }

    /// Set the channel storage policy.
    pub fn with_channels(mut self, mode: ChannelMode) -> Self {
        self.channels = mode;
        self
    }

    /// Set the per-poll timing mode.
    pub fn with_profiling(mut self, profiling: Profiling) -> Self {
        self.profiling = profiling;
        self
    }
}

/// Handle to the data collected by a sink coroutine; resolves after
/// [`RuntimeContext::run`] returns.
pub struct SinkHandle<T> {
    data: Arc<Mutex<Vec<T>>>,
}

impl<T> SinkHandle<T> {
    /// An empty sink handle; used by alternative runtimes (e.g. the
    /// thread-per-kernel simulator) that drive their own sink coroutines.
    pub fn new() -> Self {
        SinkHandle {
            data: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// The shared buffer a sink coroutine appends into.
    pub fn shared(&self) -> Arc<Mutex<Vec<T>>> {
        Arc::clone(&self.data)
    }

    /// Take the collected output (empties the handle).
    pub fn take(&self) -> Vec<T> {
        std::mem::take(&mut self.data.lock().unwrap())
    }

    /// Number of elements collected so far.
    pub fn len(&self) -> usize {
        self.data.lock().unwrap().len()
    }

    /// Whether nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Default for SinkHandle<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Result of one graph execution.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Scheduler statistics (poll counts, kernel-time fraction …).
    pub exec: ExecStats,
    /// Kernel instances still suspended at quiescence. Empty for a graph
    /// that drained cleanly; non-empty usually means a deadlock or an
    /// unfed input.
    pub stalled: Vec<String>,
    /// Total elements moved through all connectors.
    pub elements_moved: u64,
    /// Per-coroutine profile (kernels, sources, sinks) — the fine-grained
    /// version of the paper's §5.2 runtime breakdown.
    pub tasks: Vec<crate::executor::TaskProfile>,
    /// Per-connector channel counters `(name, stats)`, in connector order.
    /// Always populated (the counters are not trace-gated), so conformance
    /// checks like push/pop conservation work in untraced builds too.
    pub channels: Vec<(String, ChannelStats)>,
    /// Everything the attached tracer captured (empty for untraced runs).
    pub trace: TraceSnapshot,
    /// Channels whose observed occupancy exceeded the static bound armed
    /// with [`RuntimeContext::set_bounds_check`]. Always empty when no
    /// bounds were armed (the compiled backend never arms any).
    pub bounds_violations: Vec<BoundsViolation>,
}

impl RunReport {
    /// Whether every coroutine ran to completion.
    pub fn drained(&self) -> bool {
        self.stalled.is_empty()
    }

    /// Why the run stopped early (deadline / cancellation), if it did.
    pub fn interrupted(&self) -> Option<Interrupt> {
        self.exec.interrupted
    }

    /// Busy time of one task by label, if present.
    pub fn busy_of(&self, label: &str) -> Option<std::time::Duration> {
        self.tasks.iter().find(|t| t.label == label).map(|t| t.busy)
    }

    /// Per-kernel summary table derived from the trace — the runtime twin
    /// of `aie-sim`'s `SimReport::render`. Empty-ish for untraced runs.
    pub fn summary(&self) -> String {
        cgsim_trace::export::summary::summarize(&self.trace).render()
    }

    /// The captured trace as a Chrome-trace JSON document (load in
    /// `chrome://tracing` or `ui.perfetto.dev`).
    pub fn chrome_trace(&self) -> String {
        cgsim_trace::export::chrome::chrome_trace_json(&self.trace)
    }

    /// The captured trace and metrics as a machine-readable JSON snapshot.
    pub fn trace_json(&self) -> String {
        cgsim_trace::export::json::snapshot_json(&self.trace)
    }
}

/// A single execution instance of a compute graph (§3.6).
pub struct RuntimeContext<'g> {
    graph: &'g FlatGraph,
    library: &'g KernelLibrary,
    channels: Vec<AnyChannel>,
    executor: Executor,
    fed_inputs: Vec<bool>,
    bound_outputs: Vec<bool>,
    channel_mode: ChannelMode,
    tracer: Tracer,
    probe: Option<Arc<ExecProbe>>,
    /// Source/sink coroutine I/O for the introspector: `(task id, connector
    /// index, writes)`. Kernel I/O comes from the graph topology instead.
    io_tasks: Vec<(usize, usize, bool)>,
    /// Per-connector static occupancy bounds awaiting arming in `run`
    /// (channels may still be placeholders until every feed/collect ran).
    bounds: Option<Vec<u64>>,
}

/// Display name for connector `ci`: the graph-builder name when one was
/// given (`g.input::<T>("a")`), else a positional `c{index}` id.
fn connector_name(graph: &FlatGraph, ci: usize) -> String {
    graph.connectors[ci]
        .attrs
        .get_str("name")
        .map(str::to_owned)
        .unwrap_or_else(|| format!("c{ci}"))
}

impl<'g> RuntimeContext<'g> {
    /// Reconstruct a runnable copy of `graph` (§3.6): materialise one
    /// channel per connector and one coroutine per kernel.
    pub fn new(
        graph: &'g FlatGraph,
        library: &'g KernelLibrary,
        config: RuntimeConfig,
    ) -> Result<Self, GraphError> {
        Self::with_tracer(graph, library, config, Tracer::default())
    }

    /// Instantiate from a [`RunSpec`] — the unified launch API. Applies the
    /// spec's runtime configuration and, when the spec carries a deadline
    /// budget, arms it from this instant.
    ///
    /// The spec's backend tag is not dispatched here: `RuntimeContext` *is*
    /// the cooperative backend. Callers that honour
    /// [`Backend::Threaded`](crate::spec::Backend) dispatch before reaching
    /// this constructor (see `cgsim-graphs::support` and `cgsim-pool`).
    pub fn from_spec(
        graph: &'g FlatGraph,
        library: &'g KernelLibrary,
        spec: &RunSpec,
    ) -> Result<Self, GraphError> {
        Self::from_spec_with_tracer(graph, library, spec, Tracer::default())
    }

    /// [`RuntimeContext::from_spec`] with an attached tracer.
    pub fn from_spec_with_tracer(
        graph: &'g FlatGraph,
        library: &'g KernelLibrary,
        spec: &RunSpec,
        tracer: Tracer,
    ) -> Result<Self, GraphError> {
        let mut ctx = Self::with_tracer(graph, library, *spec.config(), tracer)?;
        if let Some(budget) = spec.deadline_budget() {
            ctx.set_deadline(Instant::now() + budget);
        }
        Ok(ctx)
    }

    /// Arm a wall-clock deadline on the embedded scheduler; past it the run
    /// stops with [`Interrupt::Deadline`] in the report.
    pub fn set_deadline(&mut self, at: Instant) {
        self.executor.set_deadline(at);
    }

    /// Attach a cancellation token to the embedded scheduler.
    pub fn set_cancel(&mut self, token: CancelToken) {
        self.executor.set_cancel(token);
    }

    /// Arm a live-introspection probe (see [`ExecProbe`]): during
    /// [`RuntimeContext::run`] the scheduler publishes its progress counter
    /// into `probe` and services debug-snapshot requests, reporting channel
    /// occupancies and blocked-kernel waits-for edges under the graph's
    /// connector names. Without a probe the run loop is unchanged.
    pub fn set_probe(&mut self, probe: Arc<ExecProbe>) {
        self.probe = Some(probe);
    }

    /// Install a custom ready-list [`SchedulePolicy`] on the embedded
    /// scheduler, overriding the `RuntimeConfig::schedule` choice — the
    /// hook the conformance harness uses to drive adversarial schedules
    /// (e.g. the consumer-starving flood that saturates one channel to its
    /// static occupancy bound).
    pub fn set_schedule_policy(&mut self, policy: Box<dyn SchedulePolicy>) {
        self.executor.set_policy(policy);
    }

    /// Arm opt-in bounds checking: `bounds[ci]` is the static worst-case
    /// occupancy bound (in tokens) for connector `ci`, as computed by
    /// `cgsim-lint`'s `CG060` analysis (`occupancy_bounds` /
    /// `LintReport::bounds`). During [`RuntimeContext::run`] the
    /// scheduler compares every instrumented channel's observed high-water
    /// occupancy against its bound at the existing interrupt checkpoint
    /// (every 64 polls) and once at quiescence; exceedances land in
    /// [`RunReport::bounds_violations`]. Connectors without an entry are
    /// unchecked. Without this call the run loop is unchanged.
    pub fn set_bounds_check(&mut self, bounds: Vec<u64>) {
        self.bounds = Some(bounds);
    }

    /// Like [`RuntimeContext::new`], but wires every channel and the
    /// scheduler to `tracer`, so the run produces a [`TraceSnapshot`]
    /// (events, per-channel metrics, per-kernel poll profile) in the
    /// returned [`RunReport`].
    pub fn with_tracer(
        graph: &'g FlatGraph,
        library: &'g KernelLibrary,
        config: RuntimeConfig,
        tracer: Tracer,
    ) -> Result<Self, GraphError> {
        graph.validate()?;

        // Ahead-of-run verification (§ static analysis): refuse graphs the
        // lint passes can prove broken — deadlock, rate imbalance, realm
        // budget overflow — before materialising a single channel.
        if config.verify != VerifyPolicy::Off {
            let lint_cfg = cgsim_lint::LintConfig {
                default_depth: config.default_depth as u32,
                ..cgsim_lint::LintConfig::default()
            };
            let report = cgsim_lint::lint_graph(graph, &lint_cfg);
            if report.has_errors() {
                match config.verify {
                    VerifyPolicy::Deny => {
                        return Err(GraphError::LintRejected {
                            errors: report.error_count(),
                            report: report.render_human(graph),
                        })
                    }
                    VerifyPolicy::Warn => eprintln!("{}", report.render_human(graph)),
                    VerifyPolicy::Off => unreachable!(),
                }
            }
        }

        // Recreate all graph I/O channels from the serialized descriptors.
        // The element type is only known to the kernel implementations, so
        // ask any kernel endpoint of each connector to construct it (the
        // paper's "template functions reconstruct objects of the appropriate
        // type when invoked").
        let mut channels: Vec<Option<AnyChannel>> = vec![None; graph.connectors.len()];
        for (ci, conn) in graph.connectors.iter().enumerate() {
            let capacity = if conn.settings.depth != 0 {
                conn.settings.depth as usize
            } else {
                config.default_depth
            };
            let endpoint = graph.kernels.iter().enumerate().find_map(|(ki, k)| {
                k.ports
                    .iter()
                    .position(|p| p.connector.index() == ci)
                    .map(|pi| (ki, pi))
            });
            if let Some((ki, pi)) = endpoint {
                let entry = library.get(&graph.kernels[ki].kind)?;
                channels[ci] = Some(entry.make_channel_mode(pi, capacity, config.channels)?);
            }
            // Connectors with no kernel endpoint (pure global passthrough)
            // are created lazily by the typed feed/collect calls.
        }

        let mut executor = Executor::new()
            .with_schedule(config.schedule)
            .with_profiling(config.profiling)
            .with_tracer(tracer.clone());
        if let Some(budget) = config.max_polls {
            executor = executor.with_poll_budget(budget);
        }
        if let Some(plan) = config.faults {
            executor = executor.with_faults(plan);
        }
        let mut ctx = RuntimeContext {
            graph,
            library,
            channels: Vec::new(),
            executor,
            fed_inputs: vec![false; graph.inputs.len()],
            bound_outputs: vec![false; graph.outputs.len()],
            channel_mode: config.channels,
            tracer,
            probe: None,
            io_tasks: Vec::new(),
            bounds: None,
        };

        // Passthrough connectors get a placeholder that `feed`/`collect`
        // replace with a typed channel; reject them here only when used by
        // kernels (which cannot happen by construction).
        for (ci, ch) in channels.into_iter().enumerate() {
            match ch {
                Some(ch) => {
                    // Wire this connector's counters and events into the
                    // tracer under its graph name (free when untraced).
                    if let Some(admin) = ch.admin() {
                        admin.instrument(&ctx.tracer, &connector_name(graph, ci));
                    }
                    ctx.channels.push(ch);
                }
                None => {
                    // No kernel endpoint: validate() guarantees this
                    // connector is both a global input and a global output.
                    // Default to a placeholder; feed() replaces it with the
                    // correctly typed channel.
                    ctx.channels.push(AnyChannel::placeholder());
                }
            }
        }

        // Instantiate all kernels and register their coroutines (suspended)
        // with the scheduler (§3.8 step 1).
        for k in &graph.kernels {
            let entry = ctx.library.get(&k.kind)?;
            let kernel_channels: Vec<AnyChannel> = k
                .ports
                .iter()
                .map(|p| ctx.channels[p.connector.index()].clone())
                .collect();
            let mut binder = PortBinder::new(&k.instance, &kernel_channels);
            let fut = entry.spawn(&mut binder)?;
            ctx.executor.spawn(k.instance.clone(), fut);
        }

        Ok(ctx)
    }

    fn typed_channel<T: StreamData>(
        &mut self,
        connector: ConnectorId,
    ) -> Result<Arc<Channel<T>>, GraphError> {
        let ci = connector.index();
        let slot = &mut self.channels[ci];
        if let Ok(chan) = slot.clone().downcast::<Channel<T>>() {
            return Ok(chan);
        }
        // Placeholder (global passthrough connector): create typed channel
        // if the slot is still the unit placeholder.
        if slot.clone().downcast::<()>().is_ok() {
            let chan = Channel::<T>::with_mode(64, self.channel_mode);
            chan.instrument(&self.tracer, &connector_name(self.graph, ci));
            *slot = AnyChannel::typed(chan.clone());
            return Ok(chan);
        }
        Err(GraphError::IoTypeMismatch {
            connector,
            expected: Box::new(self.graph.connectors[ci].dtype.clone()),
        })
    }

    /// Attach a data-source coroutine feeding `data` into positional global
    /// input `index` (§3.7).
    pub fn feed<T: StreamData>(
        &mut self,
        index: usize,
        data: impl IntoIterator<Item = T> + 'static,
    ) -> Result<(), GraphError> {
        let Some(&connector) = self.graph.inputs.get(index) else {
            return Err(GraphError::IoArityMismatch {
                what: "inputs",
                expected: self.graph.inputs.len(),
                actual: index + 1,
            });
        };
        let chan = self.typed_channel::<T>(connector)?;
        let mut tx = chan.add_producer();
        self.fed_inputs[index] = true;
        let id = self.executor.spawn(
            format!("source_{index}"),
            Box::pin(async move {
                for v in data {
                    tx.send(v).await;
                }
            }),
        );
        self.io_tasks.push((id, connector.index(), true));
        Ok(())
    }

    /// Attach a single-value source — the paper's Runtime Parameter source.
    pub fn feed_param<T: StreamData>(&mut self, index: usize, value: T) -> Result<(), GraphError> {
        self.feed(index, std::iter::once(value))
    }

    /// Attach a Runtime Parameter *sink* (§3.7: "the framework also
    /// supports passing scalar values and variables through Runtime
    /// Parameter sources and sinks"): collects the scalar(s) a kernel
    /// writes to an RTP output. The handle holds every update, the last
    /// entry being the parameter's final value.
    pub fn collect_param<T: StreamData>(
        &mut self,
        index: usize,
    ) -> Result<SinkHandle<T>, GraphError> {
        self.collect(index)
    }

    /// Attach a data-sink coroutine collecting positional global output
    /// `index` (§3.7). Results become available after [`Self::run`].
    pub fn collect<T: StreamData>(&mut self, index: usize) -> Result<SinkHandle<T>, GraphError> {
        let Some(&connector) = self.graph.outputs.get(index) else {
            return Err(GraphError::IoArityMismatch {
                what: "outputs",
                expected: self.graph.outputs.len(),
                actual: index + 1,
            });
        };
        let chan = self.typed_channel::<T>(connector)?;
        let mut rx = chan.add_consumer();
        self.bound_outputs[index] = true;
        let data = Arc::new(Mutex::new(Vec::new()));
        let sink_data = Arc::clone(&data);
        let id = self.executor.spawn(
            format!("sink_{index}"),
            Box::pin(async move {
                while let Some(v) = rx.recv().await {
                    sink_data.lock().unwrap().push(v);
                }
            }),
        );
        self.io_tasks.push((id, connector.index(), false));
        Ok(SinkHandle { data })
    }

    /// Like [`RuntimeContext::collect`], but the sink closes its consumer
    /// end after `limit` elements instead of waiting for end-of-stream —
    /// the "early sink closure" fault mode. Upstream producers observe the
    /// closure (writes to a channel with no remaining open consumers are
    /// discarded), so the graph must still drain cleanly.
    pub fn collect_bounded<T: StreamData>(
        &mut self,
        index: usize,
        limit: usize,
    ) -> Result<SinkHandle<T>, GraphError> {
        let Some(&connector) = self.graph.outputs.get(index) else {
            return Err(GraphError::IoArityMismatch {
                what: "outputs",
                expected: self.graph.outputs.len(),
                actual: index + 1,
            });
        };
        let chan = self.typed_channel::<T>(connector)?;
        let mut rx = chan.add_consumer();
        self.bound_outputs[index] = true;
        let data = Arc::new(Mutex::new(Vec::new()));
        let sink_data = Arc::clone(&data);
        let id = self.executor.spawn(
            format!("sink_{index}"),
            Box::pin(async move {
                while sink_data.lock().unwrap().len() < limit {
                    let Some(v) = rx.recv().await else { return };
                    sink_data.lock().unwrap().push(v);
                }
                // Dropping `rx` here closes the consumer before the stream
                // ends.
            }),
        );
        self.io_tasks.push((id, connector.index(), false));
        Ok(SinkHandle { data })
    }

    /// Start the embedded task scheduler and run the graph to quiescence
    /// (§3.8). Every global input must have been fed and every global output
    /// bound, mirroring the paper's positional source/sink arguments.
    pub fn run(mut self) -> Result<RunReport, GraphError> {
        if let Some(missing) = self.fed_inputs.iter().position(|f| !f) {
            return Err(GraphError::IoArityMismatch {
                what: "inputs",
                expected: self.graph.inputs.len(),
                actual: missing,
            });
        }
        if let Some(missing) = self.bound_outputs.iter().position(|f| !f) {
            return Err(GraphError::IoArityMismatch {
                what: "outputs",
                expected: self.graph.outputs.len(),
                actual: missing,
            });
        }
        // Arm the probe last: by now every placeholder channel has been
        // replaced by feed/collect, so the introspector captures the real
        // admin handles and the full source/sink topology.
        if let Some(probe) = self.probe.take() {
            let mut intro = Introspector::new();
            let mut slots: Vec<Option<usize>> = vec![None; self.channels.len()];
            for (ci, ch) in self.channels.iter().enumerate() {
                if let Some(admin) = ch.admin() {
                    slots[ci] = Some(intro.add_channel(
                        connector_name(self.graph, ci),
                        admin.capacity(),
                        Arc::clone(admin),
                    ));
                }
            }
            // Kernel coroutines were spawned in graph order: task id == ki.
            for (ki, k) in self.graph.kernels.iter().enumerate() {
                for p in &k.ports {
                    if let Some(idx) = slots[p.connector.index()] {
                        match p.dir {
                            PortDir::In => intro.add_reader(ki, idx),
                            PortDir::Out => intro.add_writer(ki, idx),
                        }
                    }
                }
            }
            for &(task, ci, writes) in &self.io_tasks {
                if let Some(idx) = slots[ci] {
                    if writes {
                        intro.add_writer(task, idx);
                    } else {
                        intro.add_reader(task, idx);
                    }
                }
            }
            self.executor.set_introspector(intro);
            self.executor.set_probe(probe);
        }
        // Arm bounds checks equally late, for the same reason: the typed
        // channels behind passthrough connectors only exist after
        // feed/collect.
        if let Some(bounds) = self.bounds.take() {
            let checks: Vec<BoundsCheck> = self
                .channels
                .iter()
                .enumerate()
                .filter_map(|(ci, ch)| {
                    let admin = ch.admin()?;
                    let &bound = bounds.get(ci)?;
                    Some(BoundsCheck {
                        name: connector_name(self.graph, ci),
                        bound,
                        admin: Arc::clone(admin),
                    })
                })
                .collect();
            self.executor.set_bounds_checks(checks);
        }
        let (exec, tasks) = self.executor.run_profiled();
        let bounds_violations = self.executor.take_bounds_violations();
        let stalled = tasks
            .iter()
            .filter(|t| !t.completed)
            .map(|t| t.label.clone())
            .collect();
        let elements_moved = self
            .channels
            .iter()
            .filter_map(|c| c.admin())
            .map(|a| a.total_pushed())
            .sum();
        let channels = self
            .channels
            .iter()
            .enumerate()
            .filter_map(|(ci, c)| {
                c.admin()
                    .map(|a| (connector_name(self.graph, ci), a.stats()))
            })
            .collect();
        Ok(RunReport {
            exec,
            stalled,
            elements_moved,
            tasks,
            channels,
            trace: self.tracer.snapshot(),
            bounds_violations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute_kernel;
    use cgsim_core::GraphBuilder;

    compute_kernel! {
        /// Adds pairs of values from two input streams (paper Figure 3).
        #[realm(aie)]
        pub fn adder_kernel(
            in1: ReadPort<f32>,
            in2: ReadPort<f32>,
            out: WritePort<f32>,
        ) {
            loop {
                let (Some(a), Some(b)) = (in1.get().await, in2.get().await) else {
                    break;
                };
                out.put(a + b).await;
            }
        }
    }

    compute_kernel! {
        /// Doubles every element.
        #[realm(aie)]
        pub fn doubler_kernel(input: ReadPort<f32>, out: WritePort<f32>) {
            while let Some(v) = input.get().await {
                out.put(v * 2.0).await;
            }
        }
    }

    fn library() -> KernelLibrary {
        KernelLibrary::with(|l| {
            l.register::<adder_kernel>();
            l.register::<doubler_kernel>();
        })
    }

    fn adder_graph() -> FlatGraph {
        GraphBuilder::build("adder", |g| {
            let a = g.input::<f32>("a");
            let b = g.input::<f32>("b");
            let sum = g.wire::<f32>();
            adder_kernel::invoke(g, &a, &b, &sum)?;
            g.output(&sum);
            Ok(())
        })
        .unwrap()
    }

    #[test]
    fn figure3_adder_executes() {
        let graph = adder_graph();
        let lib = library();
        let mut ctx = RuntimeContext::new(&graph, &lib, RuntimeConfig::default()).unwrap();
        ctx.feed(0, vec![1.0f32, 2.0, 3.0]).unwrap();
        ctx.feed(1, vec![10.0f32, 20.0, 30.0]).unwrap();
        let out = ctx.collect::<f32>(0).unwrap();
        let report = ctx.run().unwrap();
        assert!(report.drained(), "stalled: {:?}", report.stalled);
        assert_eq!(out.take(), vec![11.0, 22.0, 33.0]);
        assert!(report.elements_moved >= 9);
    }

    #[test]
    fn pipeline_of_two_kernels() {
        let graph = GraphBuilder::build("pipe", |g| {
            let a = g.input::<f32>("a");
            let mid = g.wire::<f32>();
            let out = g.wire::<f32>();
            doubler_kernel::invoke(g, &a, &mid)?;
            doubler_kernel::invoke(g, &mid, &out)?;
            g.output(&out);
            Ok(())
        })
        .unwrap();
        let lib = library();
        let mut ctx = RuntimeContext::new(&graph, &lib, RuntimeConfig::default()).unwrap();
        ctx.feed(0, vec![1.0f32, 1.5]).unwrap();
        let out = ctx.collect::<f32>(0).unwrap();
        let report = ctx.run().unwrap();
        assert!(report.drained());
        assert_eq!(out.take(), vec![4.0, 6.0]);
    }

    #[test]
    fn broadcast_feeds_two_kernels() {
        let graph = GraphBuilder::build("bcast", |g| {
            let a = g.input::<f32>("a");
            let x = g.wire::<f32>();
            let y = g.wire::<f32>();
            doubler_kernel::invoke(g, &a, &x)?;
            doubler_kernel::invoke(g, &a, &y)?;
            g.output(&x);
            g.output(&y);
            Ok(())
        })
        .unwrap();
        let lib = library();
        let mut ctx = RuntimeContext::new(&graph, &lib, RuntimeConfig::default()).unwrap();
        ctx.feed(0, vec![3.0f32]).unwrap();
        let ox = ctx.collect::<f32>(0).unwrap();
        let oy = ctx.collect::<f32>(1).unwrap();
        let report = ctx.run().unwrap();
        assert!(report.drained());
        assert_eq!(ox.take(), vec![6.0]);
        assert_eq!(oy.take(), vec![6.0]);
    }

    #[test]
    fn unknown_kernel_is_reported() {
        let graph = adder_graph();
        let lib = KernelLibrary::new();
        assert!(matches!(
            RuntimeContext::new(&graph, &lib, RuntimeConfig::default()),
            Err(GraphError::UnknownKernel { .. })
        ));
    }

    #[test]
    fn missing_feed_is_an_error() {
        let graph = adder_graph();
        let lib = library();
        let mut ctx = RuntimeContext::new(&graph, &lib, RuntimeConfig::default()).unwrap();
        ctx.feed(0, vec![1.0f32]).unwrap();
        let _out = ctx.collect::<f32>(0).unwrap();
        assert!(matches!(
            ctx.run(),
            Err(GraphError::IoArityMismatch { what: "inputs", .. })
        ));
    }

    #[test]
    fn wrong_feed_type_is_an_error() {
        let graph = adder_graph();
        let lib = library();
        let mut ctx = RuntimeContext::new(&graph, &lib, RuntimeConfig::default()).unwrap();
        assert!(matches!(
            ctx.feed(0, vec![1u8]),
            Err(GraphError::IoTypeMismatch { .. })
        ));
    }

    #[test]
    fn feed_out_of_range_is_an_error() {
        let graph = adder_graph();
        let lib = library();
        let mut ctx = RuntimeContext::new(&graph, &lib, RuntimeConfig::default()).unwrap();
        assert!(matches!(
            ctx.feed(5, vec![1.0f32]),
            Err(GraphError::IoArityMismatch { .. })
        ));
    }

    #[test]
    fn unfed_kernel_input_stalls_and_is_reported() {
        // Feed only one of the adder's inputs with data, the other with an
        // empty stream: kernel exits cleanly (None). But if we *never* feed
        // it at all, run() refuses. Here we check the stall diagnostic: feed
        // input 1 with an endless-pending trick is not possible via the
        // public API, so instead verify the clean-drain path with an empty
        // second stream.
        let graph = adder_graph();
        let lib = library();
        let mut ctx = RuntimeContext::new(&graph, &lib, RuntimeConfig::default()).unwrap();
        ctx.feed(0, vec![1.0f32, 2.0]).unwrap();
        ctx.feed(1, Vec::<f32>::new()).unwrap();
        let out = ctx.collect::<f32>(0).unwrap();
        let report = ctx.run().unwrap();
        assert!(report.drained());
        assert!(out.take().is_empty());
    }

    compute_kernel! {
        /// Counts its input stream and reports the count through an RTP
        /// output (a Runtime Parameter sink consumes it).
        #[realm(aie)]
        pub fn counter_kernel(
            input: ReadPort<f32>,
            count: WritePort<u32> @ cgsim_core::PortSettings::new().runtime_param(),
        ) {
            let mut n = 0u32;
            while input.get().await.is_some() {
                n += 1;
            }
            count.put(n).await;
        }
    }

    #[test]
    fn runtime_parameter_sink_receives_scalar() {
        let graph = GraphBuilder::build("count", |g| {
            let a = g.input::<f32>("a");
            let n = g.wire::<u32>();
            counter_kernel::invoke(g, &a, &n)?;
            g.output(&n);
            Ok(())
        })
        .unwrap();
        // The RTP connector classification comes from the port settings.
        assert_eq!(graph.connectors[1].kind, cgsim_core::PortKind::RuntimeParam);
        let lib = KernelLibrary::with(|l| {
            l.register::<counter_kernel>();
        });
        let mut ctx = RuntimeContext::new(&graph, &lib, RuntimeConfig::default()).unwrap();
        ctx.feed(0, vec![0.5f32; 37]).unwrap();
        let param = ctx.collect_param::<u32>(0).unwrap();
        let report = ctx.run().unwrap();
        assert!(report.drained());
        assert_eq!(param.take(), vec![37]);
    }

    #[test]
    fn seeded_schedules_agree_with_fifo() {
        // The same graph+input must produce identical outputs under every
        // schedule permutation — the conformance harness's core property.
        let run = |config: RuntimeConfig| {
            let graph = adder_graph();
            let lib = library();
            let mut ctx = RuntimeContext::new(&graph, &lib, config).unwrap();
            ctx.feed(0, (0..50).map(|i| i as f32).collect::<Vec<_>>())
                .unwrap();
            ctx.feed(1, (0..50).map(|i| (i * 10) as f32).collect::<Vec<_>>())
                .unwrap();
            let out = ctx.collect::<f32>(0).unwrap();
            let report = ctx.run().unwrap();
            assert!(report.drained());
            out.take()
        };
        let reference = run(RuntimeConfig::default());
        for seed in 0..4 {
            assert_eq!(
                run(RuntimeConfig::scheduled(crate::executor::Schedule::Seeded(
                    seed
                ))),
                reference,
                "seed {seed} diverged"
            );
        }
        let mut faulty = RuntimeConfig::scheduled(crate::executor::Schedule::Seeded(1));
        faulty.faults = Some(crate::executor::FaultPlan::new(9, 40));
        assert_eq!(run(faulty), reference, "fault injection changed outputs");
    }

    #[test]
    fn bounded_sink_closes_early_and_graph_drains() {
        let graph = adder_graph();
        let lib = library();
        let mut ctx = RuntimeContext::new(&graph, &lib, RuntimeConfig::default()).unwrap();
        ctx.feed(0, (0..100).map(|i| i as f32).collect::<Vec<_>>())
            .unwrap();
        ctx.feed(1, vec![1.0f32; 100]).unwrap();
        let out = ctx.collect_bounded::<f32>(0, 5).unwrap();
        let report = ctx.run().unwrap();
        assert!(report.drained(), "stalled: {:?}", report.stalled);
        assert_eq!(out.take(), vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn run_report_exposes_channel_stats() {
        let graph = adder_graph();
        let lib = library();
        let mut ctx = RuntimeContext::new(&graph, &lib, RuntimeConfig::default()).unwrap();
        ctx.feed(0, vec![1.0f32, 2.0]).unwrap();
        ctx.feed(1, vec![3.0f32, 4.0]).unwrap();
        let _out = ctx.collect::<f32>(0).unwrap();
        let report = ctx.run().unwrap();
        // a, b, sum — all instrumented, each with 2 pushes and 2 pops.
        assert_eq!(report.channels.len(), 3);
        for (name, stats) in &report.channels {
            assert_eq!(stats.pushes, 2, "channel {name}");
            assert_eq!(stats.pops, 2, "channel {name}");
        }
        assert_eq!(report.channels[0].0, "a");
    }

    #[test]
    fn depth_setting_controls_channel_capacity() {
        // A depth-1 connector forces fine-grained producer/consumer
        // interleaving; the result must still be correct.
        let graph = GraphBuilder::build("tight", |g| {
            let a = g.input::<f32>("a");
            let mid = g.wire::<f32>();
            let out = g.wire::<f32>();
            g.connector_settings(&mid, cgsim_core::PortSettings::new().depth(1));
            doubler_kernel::invoke(g, &a, &mid)?;
            doubler_kernel::invoke(g, &mid, &out)?;
            g.output(&out);
            Ok(())
        })
        .unwrap();
        let lib = library();
        let mut ctx = RuntimeContext::new(&graph, &lib, RuntimeConfig::default()).unwrap();
        ctx.feed(0, (0..100).map(|i| i as f32).collect::<Vec<_>>())
            .unwrap();
        let out = ctx.collect::<f32>(0).unwrap();
        let report = ctx.run().unwrap();
        assert!(report.drained());
        let got = out.take();
        assert_eq!(got.len(), 100);
        assert_eq!(got[7], 28.0);
        // Depth-1 queue must have caused producer suspensions.
        assert!(report.exec.suspensions > 0);
    }
}

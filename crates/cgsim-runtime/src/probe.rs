//! Live introspection of a running cooperative executor.
//!
//! The executor's hot loop is deliberately opaque — one thread, no shared
//! state — which makes a wedged run (a kernel cycle that starved itself, a
//! spinner that never progresses) invisible from the outside. This module
//! is the observation side-channel: an [`ExecProbe`] is a cheap `Arc` the
//! run loop publishes a monotonic progress counter into at its existing
//! interrupt checkpoint (every [`crate::executor::INTERRUPT_CHECK_EVERY`]
//! polls — no new hot-loop atomics when no probe is armed), and through
//! which an external watcher can request a [`DebugSnapshot`]: ready-queue
//! contents, per-channel occupancy and blocked-kernel waits-for edges,
//! built *on the executor's own thread* so thread-affine channel state is
//! safe to read.
//!
//! `cgsim-pool`'s observer thread uses this to implement its stall
//! watchdog; `Executor::debug_snapshot` exposes the same view synchronously
//! for tests and post-mortem inspection.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::channel::ChannelAdmin;

/// Shared handle between a running executor and an external watcher.
///
/// The executor publishes `(polls, progress)` at each interrupt checkpoint;
/// `progress` is completed-task count plus total elements pushed across all
/// introspected channels, so it is monotone and only stalls when the graph
/// truly stops moving data. A watcher that sees `progress` unchanged across
/// several samples can [`ExecProbe::request_snapshot`] and collect the
/// diagnostic with [`ExecProbe::take_snapshot`] once the executor services
/// the request at its next checkpoint.
#[derive(Debug, Default)]
pub struct ExecProbe {
    polls: AtomicU64,
    progress: AtomicU64,
    snapshot_requested: AtomicBool,
    snapshot: Mutex<Option<DebugSnapshot>>,
}

impl ExecProbe {
    /// A fresh probe, ready to hand to [`crate::Executor::set_probe`] (or
    /// [`crate::RuntimeContext::set_probe`]) and clone to a watcher.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Total scheduler polls at the last checkpoint.
    pub fn polls(&self) -> u64 {
        self.polls.load(Ordering::Acquire)
    }

    /// Monotonic progress counter at the last checkpoint: completed tasks
    /// plus elements pushed through introspected channels.
    pub fn progress(&self) -> u64 {
        self.progress.load(Ordering::Acquire)
    }

    /// Ask the executor to build a [`DebugSnapshot`] at its next interrupt
    /// checkpoint. Idempotent; safe from any thread.
    pub fn request_snapshot(&self) {
        self.snapshot_requested.store(true, Ordering::Release);
    }

    /// Collect a snapshot published since the last take, if any.
    pub fn take_snapshot(&self) -> Option<DebugSnapshot> {
        self.snapshot
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
    }

    pub(crate) fn publish(&self, polls: u64, progress: u64) {
        self.polls.store(polls, Ordering::Release);
        self.progress.store(progress, Ordering::Release);
    }

    /// Consume a pending snapshot request (executor side).
    pub(crate) fn clear_request(&self) -> bool {
        self.snapshot_requested.swap(false, Ordering::AcqRel)
    }

    pub(crate) fn publish_snapshot(&self, snap: DebugSnapshot) {
        *self.snapshot.lock().unwrap_or_else(|e| e.into_inner()) = Some(snap);
    }
}

/// One channel's fill level inside a [`DebugSnapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChannelOccupancy {
    /// Channel display name (graph connector name or `c{index}`).
    pub name: String,
    /// Elements currently buffered.
    pub occupancy: usize,
    /// Buffer capacity in elements.
    pub capacity: usize,
}

/// Which channel condition a blocked task is waiting out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WaitKind {
    /// Task reads the channel and it is empty: waiting for a writer.
    Empty,
    /// Task writes the channel and it is full: waiting for a reader.
    Full,
}

/// One waits-for edge: a blocked task, the channel condition blocking it,
/// and the live peer tasks that could clear the condition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WaitsForEdge {
    /// Label of the blocked task.
    pub task: String,
    /// Channel the task is waiting on.
    pub channel: String,
    /// Whether the channel is empty (read wait) or full (write wait).
    pub kind: WaitKind,
    /// Labels of live tasks whose progress would unblock `task`.
    pub peers: Vec<String>,
}

/// Point-in-time view of a (possibly wedged) executor: ready queue, blocked
/// tasks, channel occupancies, and the waits-for graph inferred from graph
/// topology plus current channel fill levels.
#[derive(Clone, Debug, Default)]
pub struct DebugSnapshot {
    /// Total scheduler polls when the snapshot was built.
    pub polls: u64,
    /// Progress counter when the snapshot was built.
    pub progress: u64,
    /// Labels of tasks in the ready queue (schedulable right now).
    pub ready: Vec<String>,
    /// Labels of live tasks that are suspended (awaiting a wake).
    pub blocked: Vec<String>,
    /// Fill level of every introspected channel.
    pub channels: Vec<ChannelOccupancy>,
    /// Waits-for edges of every blocked task.
    pub waits_for: Vec<WaitsForEdge>,
}

impl DebugSnapshot {
    /// Find a cycle in the waits-for graph: a set of tasks each waiting on
    /// the next — the runtime signature of a deadlock (what `cgsim-lint`'s
    /// CG020/CG021 predict statically). Returns the task labels along the
    /// cycle, or `None` when the waits-for graph is acyclic.
    pub fn waits_for_cycle(&self) -> Option<Vec<String>> {
        let mut adj: HashMap<&str, Vec<&str>> = HashMap::new();
        for e in &self.waits_for {
            adj.entry(e.task.as_str())
                .or_default()
                .extend(e.peers.iter().map(String::as_str));
        }
        fn dfs<'a>(
            node: &'a str,
            adj: &HashMap<&'a str, Vec<&'a str>>,
            state: &mut HashMap<&'a str, u8>,
            path: &mut Vec<&'a str>,
        ) -> Option<Vec<String>> {
            state.insert(node, 1);
            path.push(node);
            for &next in adj.get(node).into_iter().flatten() {
                match state.get(next).copied().unwrap_or(0) {
                    0 => {
                        if let Some(cycle) = dfs(next, adj, state, path) {
                            return Some(cycle);
                        }
                    }
                    1 => {
                        let start = path.iter().position(|&p| p == next).expect("on path");
                        return Some(path[start..].iter().map(|s| s.to_string()).collect());
                    }
                    _ => {}
                }
            }
            path.pop();
            state.insert(node, 2);
            None
        }
        let mut state = HashMap::new();
        let mut path = Vec::new();
        let roots: Vec<&str> = adj.keys().copied().collect();
        for root in roots {
            if state.get(root).copied().unwrap_or(0) == 0 {
                if let Some(cycle) = dfs(root, &adj, &mut state, &mut path) {
                    return Some(cycle);
                }
            }
        }
        None
    }

    /// Human-readable rendering: ready/blocked task lists, channel fill
    /// levels, waits-for edges and the detected cycle (if any).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "executor snapshot: {} polls, progress {}",
            self.polls, self.progress
        );
        let _ = writeln!(out, "  ready:   [{}]", self.ready.join(", "));
        let _ = writeln!(out, "  blocked: [{}]", self.blocked.join(", "));
        for c in &self.channels {
            let _ = writeln!(out, "  channel {}: {}/{}", c.name, c.occupancy, c.capacity);
        }
        for e in &self.waits_for {
            let cond = match e.kind {
                WaitKind::Empty => "empty",
                WaitKind::Full => "full",
            };
            let _ = writeln!(
                out,
                "  {} waits on {} ({}) -> [{}]",
                e.task,
                e.channel,
                cond,
                e.peers.join(", ")
            );
        }
        if let Some(cycle) = self.waits_for_cycle() {
            let _ = writeln!(out, "  waits-for CYCLE: {}", cycle.join(" -> "));
        }
        out
    }
}

struct ChannelMeta {
    name: String,
    capacity: usize,
    admin: Arc<dyn ChannelAdmin>,
}

/// Topology handed to the executor so it can turn "task X is suspended"
/// into "task X waits on channel C for task Y": per-channel reader/writer
/// task ids plus the type-erased admin handles for occupancy queries.
///
/// Built by [`crate::RuntimeContext::run`] when a probe is armed; raw
/// executor users can assemble one by hand via the `add_*` methods.
#[derive(Default)]
pub struct Introspector {
    channels: Vec<ChannelMeta>,
    task_reads: HashMap<usize, Vec<usize>>,
    task_writes: HashMap<usize, Vec<usize>>,
    readers: Vec<Vec<usize>>,
    writers: Vec<Vec<usize>>,
}

impl Introspector {
    /// An empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a channel; returns its introspection index.
    pub fn add_channel(
        &mut self,
        name: impl Into<String>,
        capacity: usize,
        admin: Arc<dyn ChannelAdmin>,
    ) -> usize {
        self.channels.push(ChannelMeta {
            name: name.into(),
            capacity,
            admin,
        });
        self.readers.push(Vec::new());
        self.writers.push(Vec::new());
        self.channels.len() - 1
    }

    /// Declare that executor task `task` reads channel `channel`.
    pub fn add_reader(&mut self, task: usize, channel: usize) {
        self.task_reads.entry(task).or_default().push(channel);
        self.readers[channel].push(task);
    }

    /// Declare that executor task `task` writes channel `channel`.
    pub fn add_writer(&mut self, task: usize, channel: usize) {
        self.task_writes.entry(task).or_default().push(channel);
        self.writers[channel].push(task);
    }

    /// Sum of elements ever pushed across all channels — the data-motion
    /// half of the progress counter. Lock-free (per-channel atomics).
    pub(crate) fn total_pushed(&self) -> u64 {
        self.channels.iter().map(|c| c.admin.total_pushed()).sum()
    }

    /// Current fill level of every channel. Must run on the executor's
    /// thread: occupancy goes through thread-affine channel state in
    /// [`crate::ChannelMode::SingleThread`] mode.
    pub(crate) fn occupancies(&self) -> Vec<ChannelOccupancy> {
        self.channels
            .iter()
            .map(|c| ChannelOccupancy {
                name: c.name.clone(),
                occupancy: c.admin.occupancy(),
                capacity: c.capacity,
            })
            .collect()
    }

    pub(crate) fn reads_of(&self, task: usize) -> &[usize] {
        self.task_reads.get(&task).map_or(&[], Vec::as_slice)
    }

    pub(crate) fn writes_of(&self, task: usize) -> &[usize] {
        self.task_writes.get(&task).map_or(&[], Vec::as_slice)
    }

    pub(crate) fn readers_of(&self, channel: usize) -> &[usize] {
        &self.readers[channel]
    }

    pub(crate) fn writers_of(&self, channel: usize) -> &[usize] {
        &self.writers[channel]
    }

    pub(crate) fn channel_name(&self, channel: usize) -> &str {
        &self.channels[channel].name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(task: &str, channel: &str, kind: WaitKind, peers: &[&str]) -> WaitsForEdge {
        WaitsForEdge {
            task: task.into(),
            channel: channel.into(),
            kind,
            peers: peers.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn cycle_detection_finds_two_task_loop() {
        let snap = DebugSnapshot {
            waits_for: vec![
                edge("a", "w1", WaitKind::Empty, &["b"]),
                edge("b", "w2", WaitKind::Empty, &["a"]),
            ],
            ..Default::default()
        };
        let cycle = snap.waits_for_cycle().unwrap();
        assert_eq!(cycle.len(), 2);
        assert!(cycle.contains(&"a".to_string()));
        assert!(cycle.contains(&"b".to_string()));
        assert!(snap.render().contains("CYCLE"));
    }

    #[test]
    fn acyclic_waits_for_reports_no_cycle() {
        let snap = DebugSnapshot {
            waits_for: vec![
                edge("sink_0", "out", WaitKind::Empty, &["mid"]),
                edge("mid", "in", WaitKind::Empty, &["source_0"]),
            ],
            ..Default::default()
        };
        assert!(snap.waits_for_cycle().is_none());
        assert!(!snap.render().contains("CYCLE"));
    }

    #[test]
    fn probe_round_trips_snapshot_requests() {
        let probe = ExecProbe::new();
        assert_eq!(probe.polls(), 0);
        assert!(probe.take_snapshot().is_none());
        probe.request_snapshot();
        assert!(probe.clear_request());
        assert!(!probe.clear_request(), "request is consumed");
        probe.publish(128, 42);
        probe.publish_snapshot(DebugSnapshot {
            polls: 128,
            progress: 42,
            ..Default::default()
        });
        assert_eq!(probe.polls(), 128);
        assert_eq!(probe.progress(), 42);
        let snap = probe.take_snapshot().unwrap();
        assert_eq!(snap.progress, 42);
        assert!(probe.take_snapshot().is_none(), "snapshot is consumed");
    }
}

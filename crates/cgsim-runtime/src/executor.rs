//! Cooperative single-threaded task scheduler (§3.8).
//!
//! The paper simulates concurrently executing kernels through cooperative
//! multitasking: all kernel coroutines run on one shared thread, suspended
//! and resumed by a scheduler embedded in the `RuntimeContext`. Execution
//! proceeds in two steps — create all coroutines in a *suspended* state and
//! register them as pending tasks, then run the scheduling loop until no
//! coroutine can continue (quiescence; there is no explicit termination
//! condition). Finally all remaining coroutines are terminated and their
//! heap state released.
//!
//! This module is the Rust rendition with `Future`s in place of C++20
//! coroutines. Wakers push task ids onto a shared ready queue; a per-task
//! `scheduled` flag keeps the queue duplicate-free; the run loop polls in
//! FIFO order, which makes simulation deterministic for a fixed graph and
//! input.

use crate::channel::ChannelAdmin;
use crate::probe::{DebugSnapshot, ExecProbe, Introspector, WaitKind, WaitsForEdge};
use cgsim_trace::{KernelRef, TraceEvent, Tracer};
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};
use std::time::{Duration, Instant};

/// A boxed, non-`Send` future — kernels never migrate between threads in the
/// cooperative model, matching the paper's single-thread design.
pub type LocalBoxFuture = Pin<Box<dyn Future<Output = ()> + 'static>>;

/// Strategy choosing which ready task the scheduler polls next.
///
/// The default FIFO order makes a run deterministic for a fixed graph and
/// input; alternative policies permute the ready list to explore other —
/// equally legal — cooperative interleavings. A correct graph must produce
/// the same sink outputs under every policy, which is what the conformance
/// harness (`cgsim-check`) exploits: the seeded policy turns one graph into
/// a family of replayable schedules, one per seed.
pub trait SchedulePolicy {
    /// Index into `ready` (never empty) of the task to poll next.
    fn pick(&mut self, ready: &[usize]) -> usize;
}

/// Strict FIFO — the paper's deterministic baseline schedule.
#[derive(Clone, Copy, Debug, Default)]
pub struct FifoPolicy;

impl SchedulePolicy for FifoPolicy {
    fn pick(&mut self, _ready: &[usize]) -> usize {
        0
    }
}

/// Strict LIFO — depth-first progress; the adversarial mirror of FIFO.
#[derive(Clone, Copy, Debug, Default)]
pub struct LifoPolicy;

impl SchedulePolicy for LifoPolicy {
    fn pick(&mut self, ready: &[usize]) -> usize {
        ready.len() - 1
    }
}

/// splitmix64 — tiny, deterministic, and good enough for schedule
/// permutation. Kept local so the runtime crate stays dependency-free.
#[derive(Clone, Copy, Debug)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound > 0`), via Lemire's widening
    /// multiply: `(x * bound) >> 64` maps the full 64-bit range onto the
    /// bound without the low-index skew a simple `%` has for bounds that do
    /// not divide 2^64.
    fn next_below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0, "next_below needs a positive bound");
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as usize
    }
}

/// Seeded uniform-random ready-list permutation. The same seed always
/// replays the same schedule, so a failing interleaving found by fuzzing is
/// reproducible from the printed seed alone.
#[derive(Clone, Copy, Debug)]
pub struct SeededPolicy {
    rng: SplitMix64,
}

impl SeededPolicy {
    /// A policy replaying the schedule identified by `seed`.
    pub fn new(seed: u64) -> Self {
        SeededPolicy {
            rng: SplitMix64(seed),
        }
    }
}

impl SchedulePolicy for SeededPolicy {
    fn pick(&mut self, ready: &[usize]) -> usize {
        self.rng.next_below(ready.len())
    }
}

/// Serializable description of a schedule policy — the plumbing-friendly
/// (`Copy`) form carried by `RuntimeConfig` and printed in repro commands.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(rename_all = "snake_case"))]
pub enum Schedule {
    /// Poll the longest-waiting ready task first (deterministic baseline).
    #[default]
    Fifo,
    /// Poll the most recently woken task first.
    Lifo,
    /// Seeded uniform-random permutation of the ready list.
    Seeded(u64),
}

impl Schedule {
    /// Materialise the policy object this description names.
    pub fn into_policy(self) -> Box<dyn SchedulePolicy> {
        match self {
            Schedule::Fifo => Box::new(FifoPolicy),
            Schedule::Lifo => Box::new(LifoPolicy),
            Schedule::Seeded(seed) => Box::new(SeededPolicy::new(seed)),
        }
    }
}

/// Seeded fault-injection plan: before polling the task the policy picked,
/// the executor rolls a PRNG and, with probability `stall_pct`/100, defers
/// the task to the back of the ready list instead. A deferred producer
/// leaves its channels empty longer (forced-empty stall downstream); a
/// deferred consumer leaves them full longer (forced-full stall upstream);
/// either way the wake order is perturbed. Data flow must be unaffected —
/// the conformance harness asserts outputs are bit-identical under any
/// plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaultPlan {
    /// PRNG seed; the same plan replays the same deferral sequence.
    pub seed: u64,
    /// Deferral probability in percent, clamped to `0..=90` so the loop
    /// always makes progress.
    pub stall_pct: u8,
}

impl FaultPlan {
    /// A plan deferring roughly `stall_pct`% of polls, driven by `seed`.
    pub fn new(seed: u64, stall_pct: u8) -> Self {
        FaultPlan {
            seed,
            stall_pct: stall_pct.min(90),
        }
    }
}

/// Cooperative cancellation token: a cheap, cloneable flag shared between a
/// run and whoever may need to stop it (another thread, a pool supervisor, a
/// signal handler). Cancelling is advisory — the executor notices at its
/// next interrupt checkpoint (every [`INTERRUPT_CHECK_EVERY`] polls) and
/// stops the loop, reporting [`Interrupt::Cancelled`] in [`ExecStats`].
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Why a run loop stopped before quiescence (deadline or cancellation).
/// Distinct from a poll-budget stop, which reports no interrupt — budget
/// exhaustion is a diagnostic safety valve, these are control-plane events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Interrupt {
    /// The wall-clock deadline installed with [`Executor::with_deadline`]
    /// passed.
    Deadline,
    /// The [`CancelToken`] installed with [`Executor::with_cancel`] fired.
    Cancelled,
}

/// How often (in polls) the run loop checks the deadline and cancel token.
/// A power of two keeps the check one AND + branch on the hot path; the
/// checkpoint never perturbs schedule order, so interruptible runs stay
/// bit-deterministic right up to the interrupt.
pub const INTERRUPT_CHECK_EVERY: u64 = 64;

/// How much per-poll wall-clock timing the run loop performs (§5.2).
///
/// The paper's perf methodology samples the running simulator rather than
/// timestamping every event; `Sampled` is the equivalent here — it times one
/// poll in `n` and extrapolates, keeping `Instant::now()` syscalls off the
/// hot path while `ExecStats::kernel_fraction` stays meaningful. `Full`
/// times every poll (the pre-optimisation behaviour, exact per-task busy
/// times); `Off` removes timing entirely for pure-throughput runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(rename_all = "snake_case"))]
pub enum Profiling {
    /// No per-poll timing: `kernel_time` and per-task busy times stay zero.
    Off,
    /// Time one poll in `n` (`n` clamped to ≥ 1) and attribute the measured
    /// duration to all `n`, extrapolating kernel time at 1/n the timing
    /// cost.
    Sampled(u32),
    /// Time every poll — exact, but two `Instant::now()` calls per poll.
    Full,
}

impl Default for Profiling {
    /// One timed poll in 64: cheap enough to leave on, accurate enough for
    /// the §5.2 kernel-fraction analysis.
    fn default() -> Self {
        Profiling::Sampled(64)
    }
}

/// Aggregated scheduling statistics for one run.
///
/// The split between `kernel_time` and everything else is what supports the
/// paper's §5.2 claim that cgsim spends ~99.94 % of its runtime inside the
/// kernel and a negligible share on synchronisation and data transfer.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExecStats {
    /// Tasks registered with the scheduler.
    pub tasks: usize,
    /// Tasks that ran to completion (the rest were terminated at quiescence).
    pub completed: usize,
    /// Total number of polls across all tasks.
    pub polls: u64,
    /// Polls that returned `Pending` (i.e. suspensions).
    pub suspensions: u64,
    /// Ready tasks deferred (not polled) by the fault-injection layer.
    pub injected_stalls: u64,
    /// Polls the profiler actually timed: equal to `polls` under
    /// [`Profiling::Full`], roughly `polls / n` under
    /// [`Profiling::Sampled`], and 0 under [`Profiling::Off`].
    pub timed_polls: u64,
    /// Wall-clock time spent inside task polls (kernel work). Under
    /// [`Profiling::Sampled`] this is extrapolated from the timed polls.
    pub kernel_time: Duration,
    /// Total wall-clock time of the run loop.
    pub total_time: Duration,
    /// Set when the loop stopped on a deadline or cancellation instead of
    /// reaching quiescence; `None` for a run that drained (or exhausted its
    /// poll budget).
    pub interrupted: Option<Interrupt>,
}

impl ExecStats {
    /// Fraction of run-loop time spent inside kernels (0..=1). A run that
    /// never entered the loop has done no kernel work, so an empty
    /// `total_time` reports 0.0. Under [`Profiling::Sampled`] the numerator
    /// is extrapolated, so the ratio is clamped to 1.0.
    pub fn kernel_fraction(&self) -> f64 {
        if self.total_time.is_zero() {
            return 0.0;
        }
        (self.kernel_time.as_secs_f64() / self.total_time.as_secs_f64()).min(1.0)
    }
}

/// Per-task profile, labelled with the kernel instance name — the
/// fine-grained version of the paper's §5.2 `perf` analysis.
#[derive(Clone, Debug)]
pub struct TaskProfile {
    /// Task label (kernel instance, `source_N`, `sink_N`).
    pub label: String,
    /// Times this task was polled.
    pub polls: u64,
    /// Wall-clock time spent inside this task's polls.
    pub busy: Duration,
    /// Whether the task ran to completion before quiescence.
    pub completed: bool,
}

/// One armed occupancy assertion: at every interrupt checkpoint the run
/// loop compares the channel's observed high-water occupancy
/// ([`crate::ChannelStats::max_occupancy`]) against the static `CG060`
/// bound and records a [`BoundsViolation`] when the trace exceeds it —
/// the runtime half of the lint pass's soundness contract.
pub struct BoundsCheck {
    /// Channel (connector) display name, for reporting.
    pub name: String,
    /// Static worst-case occupancy bound, in tokens.
    pub bound: u64,
    /// Admin handle of the channel under check.
    pub admin: Arc<dyn ChannelAdmin>,
}

/// A channel whose observed occupancy exceeded its static bound — either
/// the analysis is unsound for this graph or the channel misbehaved.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BoundsViolation {
    /// Channel (connector) display name.
    pub channel: String,
    /// Observed high-water occupancy (tokens).
    pub observed: u64,
    /// The static bound that was exceeded.
    pub bound: u64,
}

struct ReadyQueue {
    queue: Mutex<std::collections::VecDeque<usize>>,
}

impl ReadyQueue {
    fn push(&self, id: usize) {
        self.queue.lock().unwrap().push_back(id);
    }

    /// O(1) FIFO pop — the fast path when the schedule is strict FIFO, where
    /// consulting a policy (and the `make_contiguous`/`remove` it requires)
    /// is pure overhead.
    fn pop_front(&self) -> Option<usize> {
        self.queue.lock().unwrap().pop_front()
    }

    /// Remove and return the entry the policy picks. Only the run loop pops
    /// (wakers only push), so removing at an arbitrary index is safe.
    fn pop_with(&self, policy: &mut dyn SchedulePolicy) -> Option<usize> {
        let mut queue = self.queue.lock().unwrap();
        if queue.is_empty() {
            return None;
        }
        let idx = policy.pick(queue.make_contiguous());
        // A policy returning an index past the ready list is a bug in the
        // policy; surface it in debug builds rather than silently clamping.
        debug_assert!(
            idx < queue.len(),
            "SchedulePolicy::pick returned out-of-range index {idx} for a ready list of {}",
            queue.len()
        );
        let idx = idx.min(queue.len() - 1);
        queue.remove(idx)
    }

    /// Move a popped entry to the back of the queue (fault deferral).
    fn defer(&self, id: usize) {
        self.queue.lock().unwrap().push_back(id);
    }

    /// Snapshot of the queued task ids, front first (introspection only).
    fn ids(&self) -> Vec<usize> {
        self.queue.lock().unwrap().iter().copied().collect()
    }
}

struct TaskWaker {
    id: usize,
    ready: Arc<ReadyQueue>,
    scheduled: Arc<AtomicBool>,
    tracer: Tracer,
    kernel: KernelRef,
}

impl std::task::Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        if !self.scheduled.swap(true, Ordering::AcqRel) {
            self.tracer.emit(TraceEvent::SchedulerWake {
                kernel: self.kernel,
            });
            self.ready.push(self.id);
        }
    }
}

struct Task {
    future: LocalBoxFuture,
    waker: Waker,
    scheduled: Arc<AtomicBool>,
    /// Human-readable label for diagnostics (kernel instance name).
    label: String,
    /// Stable trace handle registered under `label`.
    kernel: KernelRef,
    polls: u64,
    busy: Duration,
}

/// The cooperative executor. Create, [`spawn`](Executor::spawn) all graph
/// coroutines, then [`run`](Executor::run) to quiescence.
pub struct Executor {
    tasks: Vec<Option<Task>>,
    ready: Option<Arc<ReadyQueue>>,
    poll_budget: Option<u64>,
    policy: Box<dyn SchedulePolicy>,
    /// True while the installed schedule is known to be strict FIFO, letting
    /// the run loop use the O(1) `ReadyQueue::pop_front` fast path.
    fifo: bool,
    faults: Option<(SplitMix64, u8)>,
    profiling: Profiling,
    tracer: Tracer,
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
    probe: Option<Arc<ExecProbe>>,
    introspector: Option<Introspector>,
    bounds_checks: Vec<BoundsCheck>,
    bounds_violations: Vec<BoundsViolation>,
}

impl Default for Executor {
    fn default() -> Self {
        Executor::new()
    }
}

impl Executor {
    /// A new executor with no tasks.
    pub fn new() -> Self {
        Executor {
            tasks: Vec::new(),
            ready: Some(Arc::new(ReadyQueue {
                queue: Mutex::new(std::collections::VecDeque::new()),
            })),
            poll_budget: None,
            policy: Box::new(FifoPolicy),
            fifo: true,
            faults: None,
            profiling: Profiling::default(),
            tracer: Tracer::default(),
            deadline: None,
            cancel: None,
            probe: None,
            introspector: None,
            bounds_checks: Vec::new(),
            bounds_violations: Vec::new(),
        }
    }

    /// Attach a tracer: subsequent [`Executor::spawn`] calls register their
    /// label as a kernel, and the run loop emits poll begin/end and
    /// scheduler-wake events. Set this before spawning.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Bound the total number of polls. A kernel that busy-yields forever
    /// (wakes itself without making progress) would otherwise spin the
    /// scheduler indefinitely — the cooperative-multitasking hazard the
    /// paper's model shares; with a budget the run stops and the offender
    /// shows up in the stalled list.
    pub fn with_poll_budget(mut self, budget: u64) -> Self {
        self.poll_budget = Some(budget);
        self
    }

    /// Replace the ready-list policy with the one `schedule` names. A
    /// [`Schedule::Fifo`] schedule keeps the O(1) pop-front fast path.
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.fifo = matches!(schedule, Schedule::Fifo);
        self.policy = schedule.into_policy();
        self
    }

    /// Install a custom [`SchedulePolicy`]. The policy only reorders *which*
    /// ready task runs next; it cannot make an unready task run, so every
    /// schedule it produces is a legal cooperative interleaving. Custom
    /// policies always go through the general pick path — use
    /// [`Executor::with_schedule`] with [`Schedule::Fifo`] to get the O(1)
    /// fast path.
    pub fn with_policy(mut self, policy: Box<dyn SchedulePolicy>) -> Self {
        self.set_policy(policy);
        self
    }

    /// Non-consuming form of [`Executor::with_policy`], for contexts that
    /// already own the executor.
    pub fn set_policy(&mut self, policy: Box<dyn SchedulePolicy>) {
        self.fifo = false;
        self.policy = policy;
    }

    /// Select how much per-poll timing the run loop performs; see
    /// [`Profiling`]. Defaults to `Profiling::Sampled(64)`.
    pub fn with_profiling(mut self, profiling: Profiling) -> Self {
        self.profiling = profiling;
        self
    }

    /// Enable seeded fault injection (forced stalls / wake reordering).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some((SplitMix64(plan.seed), plan.stall_pct.min(90)));
        self
    }

    /// Install a wall-clock deadline: the run loop stops at its next
    /// interrupt checkpoint once `at` has passed, reporting
    /// [`Interrupt::Deadline`] and leaving unfinished tasks in the stalled
    /// list.
    pub fn with_deadline(mut self, at: Instant) -> Self {
        self.set_deadline(at);
        self
    }

    /// Non-consuming form of [`Executor::with_deadline`], for contexts that
    /// already own the executor.
    pub fn set_deadline(&mut self, at: Instant) {
        self.deadline = Some(at);
    }

    /// Install a cancellation token: when `token` fires, the run loop stops
    /// at its next interrupt checkpoint, reporting [`Interrupt::Cancelled`].
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.set_cancel(token);
        self
    }

    /// Non-consuming form of [`Executor::with_cancel`].
    pub fn set_cancel(&mut self, token: CancelToken) {
        self.cancel = Some(token);
    }

    /// Arm a live-introspection probe: the run loop publishes its progress
    /// counter into `probe` at every interrupt checkpoint and services
    /// snapshot requests there. With no probe armed the hot loop is
    /// unchanged (one hoisted boolean, zero added atomics).
    pub fn set_probe(&mut self, probe: Arc<ExecProbe>) {
        self.probe = Some(probe);
    }

    /// Builder form of [`Executor::set_probe`].
    pub fn with_probe(mut self, probe: Arc<ExecProbe>) -> Self {
        self.set_probe(probe);
        self
    }

    /// Attach channel topology so [`Executor::debug_snapshot`] (and probe
    /// snapshots) can report channel occupancy and waits-for edges.
    pub fn set_introspector(&mut self, introspector: Introspector) {
        self.introspector = Some(introspector);
    }

    /// Arm static-bound occupancy assertions: at every interrupt
    /// checkpoint (and once at quiescence) the run loop compares each
    /// channel's high-water occupancy against its bound and records
    /// violations, retrievable with [`Executor::take_bounds_violations`].
    /// With no checks armed the hot loop is unchanged.
    pub fn set_bounds_checks(&mut self, checks: Vec<BoundsCheck>) {
        self.bounds_checks = checks;
    }

    /// Drain the violations the last run recorded (empty when every
    /// observed occupancy stayed within its static bound).
    pub fn take_bounds_violations(&mut self) -> Vec<BoundsViolation> {
        std::mem::take(&mut self.bounds_violations)
    }

    /// Re-derive the violation list from the channels' current high-water
    /// marks. `max_occupancy` is monotone over a run, so recomputing from
    /// scratch at each checkpoint both deduplicates and keeps the final
    /// sweep authoritative.
    fn sweep_bounds(&mut self) {
        self.bounds_violations.clear();
        for check in &self.bounds_checks {
            let observed = check.admin.stats().max_occupancy;
            if observed > check.bound {
                self.bounds_violations.push(BoundsViolation {
                    channel: check.name.clone(),
                    observed,
                    bound: check.bound,
                });
            }
        }
    }

    /// The progress counter's current value: completed tasks plus elements
    /// pushed through introspected channels. Monotone over a run.
    fn progress_value(&self, completed: usize) -> u64 {
        let pushed = self
            .introspector
            .as_ref()
            .map_or(0, Introspector::total_pushed);
        completed as u64 + pushed
    }

    /// Build a [`DebugSnapshot`] of the current scheduler state: ready and
    /// blocked task labels, channel occupancies, and waits-for edges
    /// (blocked reader of an empty channel waits for its live writers; a
    /// blocked writer of a full channel waits for its live readers).
    ///
    /// Must run on the executor's thread — channel occupancy goes through
    /// thread-affine state in the single-thread channel mode. The run loop
    /// calls this at its interrupt checkpoint on a probe's request; tests
    /// and post-mortem diagnostics can call it directly between runs.
    pub fn debug_snapshot(&self) -> DebugSnapshot {
        let completed = self.tasks.iter().filter(|t| t.is_none()).count();
        let polls = self.tasks.iter().flatten().map(|t| t.polls).sum::<u64>();
        self.build_debug_snapshot(polls, self.progress_value(completed), None)
    }

    fn build_debug_snapshot(
        &self,
        polls: u64,
        progress: u64,
        current: Option<usize>,
    ) -> DebugSnapshot {
        let label_of = |id: usize| -> Option<String> {
            self.tasks
                .get(id)
                .and_then(Option::as_ref)
                .map(|t| t.label.clone())
        };
        // Ready = queued ids plus the id popped for this poll round (its
        // `scheduled` flag is still set, it is simply in the loop's hand).
        let mut ready_ids = self.ready().ids();
        if let Some(id) = current {
            ready_ids.insert(0, id);
        }
        let ready: Vec<String> = ready_ids.iter().copied().filter_map(label_of).collect();
        let mut blocked = Vec::new();
        let mut blocked_ids = Vec::new();
        for (id, slot) in self.tasks.iter().enumerate() {
            let Some(task) = slot else { continue };
            if !task.scheduled.load(Ordering::Acquire) {
                blocked.push(task.label.clone());
                blocked_ids.push(id);
            }
        }
        let mut channels = Vec::new();
        let mut waits_for = Vec::new();
        if let Some(intro) = &self.introspector {
            channels = intro.occupancies();
            let live_peers = |ids: &[usize], this: usize| -> Vec<String> {
                ids.iter()
                    .copied()
                    .filter(|&p| p != this)
                    .filter_map(label_of)
                    .collect()
            };
            for &id in &blocked_ids {
                for &ci in intro.reads_of(id) {
                    if channels[ci].occupancy == 0 {
                        waits_for.push(WaitsForEdge {
                            task: label_of(id).unwrap_or_default(),
                            channel: intro.channel_name(ci).to_string(),
                            kind: WaitKind::Empty,
                            peers: live_peers(intro.writers_of(ci), id),
                        });
                    }
                }
                for &ci in intro.writes_of(id) {
                    if channels[ci].capacity > 0 && channels[ci].occupancy >= channels[ci].capacity
                    {
                        waits_for.push(WaitsForEdge {
                            task: label_of(id).unwrap_or_default(),
                            channel: intro.channel_name(ci).to_string(),
                            kind: WaitKind::Full,
                            peers: live_peers(intro.readers_of(ci), id),
                        });
                    }
                }
            }
        }
        DebugSnapshot {
            polls,
            progress,
            ready,
            blocked,
            channels,
            waits_for,
        }
    }

    fn ready(&self) -> &Arc<ReadyQueue> {
        self.ready.as_ref().expect("executor initialized")
    }

    /// Register a coroutine in the *suspended* state (paper step 1). It will
    /// receive its first poll when the run loop starts.
    pub fn spawn(&mut self, label: impl Into<String>, future: LocalBoxFuture) -> usize {
        let id = self.tasks.len();
        let label = label.into();
        let kernel = self.tracer.register_kernel(&label);
        let scheduled = Arc::new(AtomicBool::new(true)); // pre-queued below
        let waker = Waker::from(Arc::new(TaskWaker {
            id,
            ready: Arc::clone(self.ready()),
            scheduled: Arc::clone(&scheduled),
            tracer: self.tracer.clone(),
            kernel,
        }));
        self.tasks.push(Some(Task {
            future,
            waker,
            scheduled,
            label,
            kernel,
            polls: 0,
            busy: Duration::ZERO,
        }));
        self.ready().push(id);
        id
    }

    /// Run the scheduling loop until no task can continue (paper step 2),
    /// then terminate all remaining coroutines. Returns run statistics and
    /// the labels of tasks that were still suspended at quiescence (useful
    /// for diagnosing deadlocked graphs).
    pub fn run(&mut self) -> (ExecStats, Vec<String>) {
        let (stats, profiles) = self.run_profiled();
        let stalled = profiles
            .into_iter()
            .filter(|p| !p.completed)
            .map(|p| p.label)
            .collect();
        (stats, stalled)
    }

    /// Like [`Executor::run`], but also returns a per-task profile (poll
    /// count and busy time per kernel instance) — the fine-grained view of
    /// the paper's §5.2 profiling analysis.
    pub fn run_profiled(&mut self) -> (ExecStats, Vec<TaskProfile>) {
        let started = Instant::now();
        self.tracer.emit(TraceEvent::RunBegin);
        let mut stats = ExecStats {
            tasks: self.tasks.len(),
            ..ExecStats::default()
        };
        let mut profiles: Vec<Option<TaskProfile>> = (0..self.tasks.len()).map(|_| None).collect();
        let ready = Arc::clone(self.ready());
        // Branch-predictable early-outs hoisted off the hot loop: whether
        // the tracer records anything, and how often a poll is timed.
        let trace_on = self.tracer.is_enabled();
        let sample_every: u64 = match self.profiling {
            Profiling::Off => 0,
            Profiling::Sampled(n) => u64::from(n.max(1)),
            Profiling::Full => 1,
        };
        // The histogram key documents its own sampling rate
        // (`poll_ns{sample_every=N}`) so trace consumers can tell sampled
        // data from full data instead of silently under-counting.
        let poll_hist = (trace_on && sample_every > 0).then(|| {
            self.tracer
                .histogram("poll_ns", &[("sample_every", &sample_every.to_string())])
        });
        let interruptible = self.deadline.is_some() || self.cancel.is_some();
        // Hoisted so an un-probed run pays one predictable branch per
        // checkpoint window and touches no new atomics.
        let probe = self.probe.clone();
        let probe_on = probe.is_some();
        let bounds_on = !self.bounds_checks.is_empty();
        loop {
            let next = if self.fifo {
                ready.pop_front()
            } else {
                ready.pop_with(self.policy.as_mut())
            };
            let Some(id) = next else { break };
            if self.poll_budget.is_some_and(|b| stats.polls >= b) {
                break; // budget exhausted: remaining tasks report as stalled
            }
            // Interrupt checkpoint: amortised over INTERRUPT_CHECK_EVERY
            // polls so the deadline's `Instant::now()` stays off the hot
            // path. The popped task simply does not run — its `scheduled`
            // flag stays set, exactly like a budget-exhaustion break.
            if (interruptible || probe_on || bounds_on)
                && stats.polls.is_multiple_of(INTERRUPT_CHECK_EVERY)
            {
                if interruptible {
                    if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                        stats.interrupted = Some(Interrupt::Cancelled);
                        break;
                    }
                    if self.deadline.is_some_and(|at| Instant::now() >= at) {
                        stats.interrupted = Some(Interrupt::Deadline);
                        break;
                    }
                }
                // Probe service point: publish progress and, on request,
                // build the debug snapshot here on the executor's own
                // thread (channel occupancy is thread-affine).
                if let Some(p) = &probe {
                    let progress = self.progress_value(stats.completed);
                    p.publish(stats.polls, progress);
                    if p.clear_request() {
                        p.publish_snapshot(self.build_debug_snapshot(
                            stats.polls,
                            progress,
                            Some(id),
                        ));
                    }
                }
                if bounds_on {
                    self.sweep_bounds();
                }
            }
            if let Some((rng, pct)) = self.faults.as_mut() {
                // Forced stall: skip this task's turn and send it to the
                // back of the line. Its `scheduled` flag stays set, so it
                // cannot be double-queued by a concurrent wake.
                if *pct > 0 && rng.next_below(100) < *pct as usize {
                    stats.injected_stalls += 1;
                    ready.defer(id);
                    continue;
                }
            }
            let Some(task) = self.tasks[id].as_mut() else {
                continue; // completed task woken late
            };
            task.scheduled.store(false, Ordering::Release);
            let waker = task.waker.clone();
            let mut cx = Context::from_waker(&waker);
            let timed =
                sample_every == 1 || (sample_every > 1 && stats.polls.is_multiple_of(sample_every));
            stats.polls += 1;
            task.polls += 1;
            let kernel = task.kernel;
            if trace_on {
                self.tracer.emit(TraceEvent::PollBegin { kernel });
            }
            let poll_start = timed.then(Instant::now);
            let result = task.future.as_mut().poll(&mut cx);
            if let Some(start) = poll_start {
                let elapsed = start.elapsed();
                // One timed poll stands for `sample_every` polls: attribute
                // the extrapolated duration so kernel_fraction stays
                // meaningful at a fraction of the timing cost.
                let attributed = elapsed * sample_every as u32;
                stats.timed_polls += 1;
                stats.kernel_time += attributed;
                task.busy += attributed;
                if let Some(hist) = &poll_hist {
                    hist.observe(elapsed.as_nanos() as u64);
                }
            }
            if trace_on {
                self.tracer.emit(TraceEvent::PollEnd {
                    kernel,
                    pending: result.is_pending(),
                });
            }
            match result {
                Poll::Ready(()) => {
                    stats.completed += 1;
                    // Drop the coroutine (and its port handles) immediately —
                    // this is what propagates stream closure downstream.
                    let task = self.tasks[id].take().expect("task present");
                    profiles[id] = Some(TaskProfile {
                        label: task.label,
                        polls: task.polls,
                        busy: task.busy,
                        completed: true,
                    });
                }
                Poll::Pending => {
                    stats.suspensions += 1;
                }
            }
        }
        // Final probe publish (and snapshot service) before the remaining
        // coroutines are torn down, so a watcher that sampled mid-run sees
        // the terminal progress value instead of a stale checkpoint.
        if let Some(p) = &probe {
            let progress = self.progress_value(stats.completed);
            p.publish(stats.polls, progress);
            if p.clear_request() {
                p.publish_snapshot(self.build_debug_snapshot(stats.polls, progress, None));
            }
        }
        // Final bounds sweep: the checkpoint cadence can miss the last
        // polls of a run, but `max_occupancy` is monotone, so one sweep at
        // quiescence sees the true high-water mark.
        if bounds_on {
            self.sweep_bounds();
        }
        // Quiescence: terminate all remaining kernel coroutines and release
        // their context objects (paper §3.8).
        for (id, slot) in self.tasks.iter_mut().enumerate() {
            if let Some(task) = slot.take() {
                profiles[id] = Some(TaskProfile {
                    label: task.label,
                    polls: task.polls,
                    busy: task.busy,
                    completed: false,
                });
            }
        }
        stats.total_time = started.elapsed();
        self.tracer.emit(TraceEvent::RunEnd);
        (stats, profiles.into_iter().flatten().collect())
    }
}

/// Drive a single future to completion on the current thread, parking the
/// thread while the future is suspended.
///
/// The thread-per-kernel functional simulator (`cgsim-threads`, the paper's
/// x86sim comparison point) runs each kernel coroutine under `block_on` on a
/// dedicated OS thread; channel wakers then unpark the right thread.
pub fn block_on<F: Future>(future: F) -> F::Output {
    struct ThreadWaker {
        thread: std::thread::Thread,
        notified: AtomicBool,
    }
    impl std::task::Wake for ThreadWaker {
        fn wake(self: Arc<Self>) {
            self.wake_by_ref();
        }
        fn wake_by_ref(self: &Arc<Self>) {
            if !self.notified.swap(true, Ordering::AcqRel) {
                self.thread.unpark();
            }
        }
    }

    let mut future = std::pin::pin!(future);
    let thread_waker = Arc::new(ThreadWaker {
        thread: std::thread::current(),
        notified: AtomicBool::new(false),
    });
    let waker = Waker::from(Arc::clone(&thread_waker));
    let mut cx = Context::from_waker(&waker);
    loop {
        match future.as_mut().poll(&mut cx) {
            Poll::Ready(out) => return out,
            Poll::Pending => {
                while !thread_waker.notified.swap(false, Ordering::AcqRel) {
                    std::thread::park();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    /// A future that suspends `n` times before completing, re-waking itself.
    struct YieldN {
        remaining: u32,
    }
    impl Future for YieldN {
        type Output = ();
        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            if self.remaining == 0 {
                Poll::Ready(())
            } else {
                self.remaining -= 1;
                cx.waker().wake_by_ref();
                Poll::Pending
            }
        }
    }

    #[test]
    fn block_on_simple_value() {
        assert_eq!(block_on(async { 41 + 1 }), 42);
    }

    #[test]
    fn block_on_with_yields() {
        block_on(async {
            YieldN { remaining: 5 }.await;
        });
    }

    #[test]
    fn executor_runs_all_tasks_to_completion() {
        let counter = Rc::new(Cell::new(0));
        let mut ex = Executor::new();
        for _ in 0..10 {
            let c = Rc::clone(&counter);
            ex.spawn(
                "t",
                Box::pin(async move {
                    YieldN { remaining: 3 }.await;
                    c.set(c.get() + 1);
                }),
            );
        }
        let (stats, stalled) = ex.run();
        assert_eq!(counter.get(), 10);
        assert_eq!(stats.tasks, 10);
        assert_eq!(stats.completed, 10);
        assert!(stalled.is_empty());
        // Each task suspends 3 times and is polled 4 times in total.
        assert_eq!(stats.suspensions, 30);
        assert_eq!(stats.polls, 40);
    }

    #[test]
    fn quiescence_reports_stalled_tasks() {
        /// Never completes and never re-wakes: a deadlocked kernel.
        struct Stuck;
        impl Future for Stuck {
            type Output = ();
            fn poll(self: Pin<&mut Self>, _: &mut Context<'_>) -> Poll<()> {
                Poll::Pending
            }
        }
        let mut ex = Executor::new();
        ex.spawn("done", Box::pin(async {}));
        ex.spawn("stuck_kernel", Box::pin(Stuck));
        let (stats, stalled) = ex.run();
        assert_eq!(stats.completed, 1);
        assert_eq!(stalled, vec!["stuck_kernel".to_string()]);
    }

    #[test]
    fn tasks_interleave_cooperatively() {
        // Two tasks alternately appending to a log must interleave, proving
        // suspension actually yields control.
        let log = Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut ex = Executor::new();
        for name in ["a", "b"] {
            let log = Rc::clone(&log);
            ex.spawn(
                name,
                Box::pin(async move {
                    for i in 0..3 {
                        log.borrow_mut().push(format!("{name}{i}"));
                        YieldN { remaining: 1 }.await;
                    }
                }),
            );
        }
        ex.run();
        let log = log.borrow();
        // FIFO scheduling gives strict alternation.
        assert_eq!(
            *log,
            vec!["a0", "b0", "a1", "b1", "a2", "b2"]
                .into_iter()
                .map(String::from)
                .collect::<Vec<_>>()
        );
    }

    /// Run two 3-iteration yielders under `schedule` and return the
    /// interleaving log.
    fn interleaving_of(schedule: Schedule) -> Vec<String> {
        let log = Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut ex = Executor::new().with_schedule(schedule);
        for name in ["a", "b"] {
            let log = Rc::clone(&log);
            ex.spawn(
                name,
                Box::pin(async move {
                    for i in 0..3 {
                        log.borrow_mut().push(format!("{name}{i}"));
                        YieldN { remaining: 1 }.await;
                    }
                }),
            );
        }
        ex.run();
        let log = log.borrow();
        log.clone()
    }

    #[test]
    fn lifo_policy_runs_depth_first() {
        // Each yield re-queues the task at the back, but LIFO picks the
        // back: the first task runs to completion before the second starts.
        assert_eq!(
            interleaving_of(Schedule::Lifo),
            vec!["b0", "b1", "b2", "a0", "a1", "a2"]
                .into_iter()
                .map(String::from)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn seeded_schedule_is_replayable_and_varied() {
        let runs: Vec<Vec<String>> = (0..8)
            .map(|s| interleaving_of(Schedule::Seeded(s)))
            .collect();
        for (seed, first) in runs.iter().enumerate() {
            // Same seed → identical schedule.
            assert_eq!(
                *first,
                interleaving_of(Schedule::Seeded(seed as u64)),
                "seed {seed} did not replay"
            );
            // Every schedule preserves per-task program order.
            for name in ["a", "b"] {
                let steps: Vec<&String> = first.iter().filter(|e| e.starts_with(name)).collect();
                assert_eq!(steps.len(), 3);
                assert!(steps.windows(2).all(|w| w[0] < w[1]));
            }
        }
        // Across 8 seeds at least two distinct interleavings must appear.
        assert!(
            runs.iter().any(|r| *r != runs[0]),
            "all seeds produced the same schedule"
        );
    }

    #[test]
    fn fault_injection_defers_but_never_drops_work() {
        let counter = Rc::new(Cell::new(0));
        let mut ex = Executor::new()
            .with_schedule(Schedule::Seeded(7))
            .with_faults(FaultPlan::new(7, 50));
        for _ in 0..8 {
            let c = Rc::clone(&counter);
            ex.spawn(
                "t",
                Box::pin(async move {
                    YieldN { remaining: 4 }.await;
                    c.set(c.get() + 1);
                }),
            );
        }
        let (stats, stalled) = ex.run();
        assert_eq!(counter.get(), 8);
        assert!(stalled.is_empty());
        assert!(stats.injected_stalls > 0, "plan with 50% never fired");
        // Deferrals are not polls.
        assert_eq!(stats.polls, 8 * 5);
    }

    #[test]
    fn kernel_fraction_is_bounded() {
        let mut ex = Executor::new();
        ex.spawn("t", Box::pin(async {}));
        let (stats, _) = ex.run();
        let f = stats.kernel_fraction();
        assert!((0.0..=1.0).contains(&f), "fraction {f} out of range");
    }

    #[test]
    fn kernel_fraction_of_empty_run_is_zero() {
        // A run that did no work must not claim 100% kernel occupancy.
        let stats = ExecStats::default();
        assert!(stats.total_time.is_zero());
        assert_eq!(stats.kernel_fraction(), 0.0);
    }

    #[test]
    fn poll_budget_stops_spinning_kernels() {
        /// Busy-yields forever — the pathological kernel a cooperative
        /// scheduler cannot preempt.
        struct Spinner;
        impl Future for Spinner {
            type Output = ();
            fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
                cx.waker().wake_by_ref();
                Poll::Pending
            }
        }
        let mut ex = Executor::new().with_poll_budget(100);
        ex.spawn("spinner", Box::pin(Spinner));
        ex.spawn("fine", Box::pin(async {}));
        let (stats, stalled) = ex.run();
        assert!(stats.polls <= 100);
        assert!(stalled.contains(&"spinner".to_string()));
        // The well-behaved task may or may not have completed depending on
        // interleaving, but the run terminated — that is the guarantee.
    }

    /// Busy-yields forever — reused by the interrupt tests below.
    struct Spinner2;
    impl Future for Spinner2 {
        type Output = ();
        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }

    #[test]
    fn expired_deadline_interrupts_a_spinning_run() {
        let mut ex = Executor::new().with_deadline(Instant::now() + Duration::from_millis(5));
        ex.spawn("spinner", Box::pin(Spinner2));
        let (stats, stalled) = ex.run();
        assert_eq!(stats.interrupted, Some(Interrupt::Deadline));
        assert_eq!(stalled, vec!["spinner".to_string()]);
    }

    #[test]
    fn cancel_token_interrupts_a_spinning_run() {
        let token = CancelToken::new();
        token.cancel();
        let mut ex = Executor::new().with_cancel(token);
        ex.spawn("spinner", Box::pin(Spinner2));
        let (stats, stalled) = ex.run();
        assert_eq!(stats.interrupted, Some(Interrupt::Cancelled));
        assert_eq!(stalled, vec!["spinner".to_string()]);
    }

    #[test]
    fn uninterrupted_run_reports_no_interrupt() {
        let token = CancelToken::new();
        let mut ex = Executor::new()
            .with_cancel(token.clone())
            .with_deadline(Instant::now() + Duration::from_secs(3600));
        ex.spawn(
            "t",
            Box::pin(async {
                YieldN { remaining: 3 }.await;
            }),
        );
        let (stats, stalled) = ex.run();
        assert_eq!(stats.interrupted, None);
        assert!(stalled.is_empty());
        assert!(!token.is_cancelled());
    }

    #[test]
    fn interrupt_checkpoint_preserves_schedule_determinism() {
        // Installing a far-future deadline must not change the poll order.
        let without = interleaving_of(Schedule::Fifo);
        let log = Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut ex = Executor::new().with_deadline(Instant::now() + Duration::from_secs(3600));
        for name in ["a", "b"] {
            let log = Rc::clone(&log);
            ex.spawn(
                name,
                Box::pin(async move {
                    for i in 0..3 {
                        log.borrow_mut().push(format!("{name}{i}"));
                        YieldN { remaining: 1 }.await;
                    }
                }),
            );
        }
        ex.run();
        assert_eq!(without, *log.borrow());
    }

    #[cfg(feature = "trace")]
    #[test]
    fn traced_run_emits_poll_and_wake_events() {
        let tracer = Tracer::ring(1024);
        let mut ex = Executor::new().with_tracer(tracer.clone());
        ex.spawn(
            "yielder",
            Box::pin(async {
                YieldN { remaining: 2 }.await;
            }),
        );
        let (stats, _) = ex.run();
        assert_eq!(stats.polls, 3);
        let snap = tracer.snapshot();
        assert_eq!(snap.kernels, vec!["yielder"]);
        let kinds: Vec<&str> = snap.records.iter().map(|r| r.event.kind()).collect();
        assert_eq!(kinds.iter().filter(|k| **k == "poll_begin").count(), 3);
        assert_eq!(kinds.iter().filter(|k| **k == "poll_end").count(), 3);
        // Self-wakes from YieldN surface as scheduler wakes.
        assert_eq!(kinds.iter().filter(|k| **k == "scheduler_wake").count(), 2);
        assert_eq!(kinds.first(), Some(&"run_begin"));
        assert_eq!(kinds.last(), Some(&"run_end"));
        // The final poll completes: its PollEnd must say not-pending.
        let last_poll = snap
            .records
            .iter()
            .rev()
            .find_map(|r| match r.event {
                TraceEvent::PollEnd { pending, .. } => Some(pending),
                _ => None,
            })
            .unwrap();
        assert!(!last_poll);
    }

    #[test]
    fn wake_dedup_prevents_duplicate_queue_entries() {
        /// Wakes itself several times per poll; must still complete exactly
        /// once and not be polled once per wake call.
        struct NoisyWake {
            polls: Rc<Cell<u32>>,
        }
        impl Future for NoisyWake {
            type Output = ();
            fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
                let n = self.polls.get() + 1;
                self.polls.set(n);
                if n >= 3 {
                    Poll::Ready(())
                } else {
                    cx.waker().wake_by_ref();
                    cx.waker().wake_by_ref();
                    cx.waker().wake_by_ref();
                    Poll::Pending
                }
            }
        }
        let polls = Rc::new(Cell::new(0));
        let mut ex = Executor::new();
        ex.spawn(
            "noisy",
            Box::pin(NoisyWake {
                polls: Rc::clone(&polls),
            }),
        );
        let (stats, _) = ex.run();
        assert_eq!(polls.get(), 3);
        assert_eq!(stats.polls, 3);
    }

    #[test]
    fn seeded_next_below_has_no_gross_bias() {
        // 13 does not divide 2^64, so the old `%`-based mapping skewed low
        // buckets; the widening multiply must keep every bucket within a
        // loose ±10% of uniform.
        let bound = 13usize;
        let draws = 130_000u32;
        let mut rng = SplitMix64(0xDEC0DE);
        let mut counts = vec![0u32; bound];
        for _ in 0..draws {
            let v = rng.next_below(bound);
            assert!(v < bound, "next_below escaped its bound: {v}");
            counts[v] += 1;
        }
        let mean = (draws as usize / bound) as i64;
        for (bucket, &count) in counts.iter().enumerate() {
            let deviation = (count as i64 - mean).abs();
            assert!(
                deviation < mean / 10,
                "bucket {bucket} count {count} deviates more than 10% from {mean}"
            );
        }
    }

    /// A policy with an off-by-N bug: always picks past the ready list.
    struct WildPolicy;
    impl SchedulePolicy for WildPolicy {
        fn pick(&mut self, ready: &[usize]) -> usize {
            ready.len() + 3
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "out-of-range")]
    fn out_of_range_policy_pick_panics_in_debug() {
        let mut ex = Executor::new().with_policy(Box::new(WildPolicy));
        ex.spawn("a", Box::pin(async {}));
        ex.spawn("b", Box::pin(async {}));
        ex.run();
    }

    #[test]
    fn profiling_off_does_no_timing() {
        let mut ex = Executor::new().with_profiling(Profiling::Off);
        for _ in 0..4 {
            ex.spawn(
                "t",
                Box::pin(async {
                    YieldN { remaining: 3 }.await;
                }),
            );
        }
        let (stats, _) = ex.run();
        assert_eq!(stats.polls, 16);
        assert_eq!(stats.timed_polls, 0);
        assert_eq!(stats.kernel_time, Duration::ZERO);
        // total_time is still measured (two Instant calls per *run*, not per
        // poll), so the fraction is well-defined and zero.
        assert_eq!(stats.kernel_fraction(), 0.0);
    }

    #[test]
    fn profiling_sampled_times_one_poll_in_n() {
        let mut ex = Executor::new().with_profiling(Profiling::Sampled(4));
        for _ in 0..10 {
            ex.spawn(
                "t",
                Box::pin(async {
                    YieldN { remaining: 3 }.await;
                }),
            );
        }
        let (stats, profiles) = ex.run_profiled();
        assert_eq!(stats.polls, 40);
        assert_eq!(stats.timed_polls, 10); // polls 0, 4, 8, ... 36
        let f = stats.kernel_fraction();
        assert!((0.0..=1.0).contains(&f), "fraction {f} out of range");
        assert_eq!(profiles.len(), 10);
    }

    #[test]
    fn profiling_full_times_every_poll() {
        let mut ex = Executor::new().with_profiling(Profiling::Full);
        ex.spawn(
            "t",
            Box::pin(async {
                YieldN { remaining: 5 }.await;
            }),
        );
        let (stats, _) = ex.run();
        assert_eq!(stats.polls, 6);
        assert_eq!(stats.timed_polls, 6);
    }

    #[test]
    fn sampled_zero_is_clamped_to_full() {
        let mut ex = Executor::new().with_profiling(Profiling::Sampled(0));
        ex.spawn("t", Box::pin(async {}));
        let (stats, _) = ex.run();
        assert_eq!(stats.timed_polls, stats.polls);
    }

    #[test]
    fn probe_publishes_progress_and_serves_snapshot_requests() {
        let probe = ExecProbe::new();
        let mut ex = Executor::new()
            .with_probe(Arc::clone(&probe))
            .with_poll_budget(500);
        ex.spawn("spinner", Box::pin(Spinner2));
        ex.spawn(
            "worker",
            Box::pin(async {
                YieldN { remaining: 3 }.await;
            }),
        );
        // Requested before the run: the loop's first checkpoint (poll 0)
        // services it on the executor thread.
        probe.request_snapshot();
        let (stats, _) = ex.run();
        assert!(stats.polls > 0);
        assert_eq!(probe.polls(), stats.polls);
        // Progress = completed tasks (no channels introspected here).
        assert_eq!(probe.progress(), stats.completed as u64);
        let snap = probe.take_snapshot().unwrap();
        // At poll 0 both tasks were pre-queued: ready, none blocked.
        assert!(snap.ready.contains(&"spinner".to_string()));
        assert!(snap.ready.contains(&"worker".to_string()));
        assert!(snap.blocked.is_empty());
    }

    #[test]
    fn debug_snapshot_names_waits_for_cycle_on_wedged_channel_graph() {
        use crate::channel::{Channel, ChannelAdmin};
        use crate::probe::Introspector;

        // Two kernels in an unprimed capacity-1 cycle: a reads w1/writes w2,
        // b reads w2/writes w1. Neither channel ever holds data, so both
        // block on their first read — the runtime shape of lint code CG020.
        let w1 = Channel::<i64>::new(1);
        let w2 = Channel::<i64>::new(1);
        let probe = ExecProbe::new();
        let mut ex = Executor::new().with_probe(Arc::clone(&probe));

        let mut rx1 = w1.add_consumer();
        let mut tx2 = w2.add_producer();
        ex.spawn(
            "a",
            Box::pin(async move {
                while let Some(v) = rx1.recv().await {
                    tx2.send(v).await;
                }
            }),
        );
        let mut rx2 = w2.add_consumer();
        let mut tx1 = w1.add_producer();
        ex.spawn(
            "b",
            Box::pin(async move {
                while let Some(v) = rx2.recv().await {
                    tx1.send(v).await;
                }
            }),
        );
        // A third task that requests the snapshot once the cycle tasks have
        // had time to block, then lets the run quiesce; the executor's final
        // publish services the request while the wedged tasks still exist.
        let p2 = Arc::clone(&probe);
        ex.spawn(
            "requester",
            Box::pin(async move {
                YieldN { remaining: 8 }.await;
                p2.request_snapshot();
            }),
        );

        let mut intro = Introspector::new();
        let c1 = intro.add_channel("w1", 1, Arc::clone(&w1) as Arc<dyn ChannelAdmin>);
        let c2 = intro.add_channel("w2", 1, Arc::clone(&w2) as Arc<dyn ChannelAdmin>);
        intro.add_reader(0, c1);
        intro.add_writer(0, c2);
        intro.add_reader(1, c2);
        intro.add_writer(1, c1);
        ex.set_introspector(intro);

        let (_, stalled) = ex.run();
        assert!(stalled.contains(&"a".to_string()));
        assert!(stalled.contains(&"b".to_string()));

        let snap = probe.take_snapshot().unwrap();
        assert!(snap.blocked.contains(&"a".to_string()));
        assert!(snap.blocked.contains(&"b".to_string()));
        assert_eq!(snap.channels.len(), 2);
        assert!(snap.channels.iter().all(|c| c.occupancy == 0));
        // a waits on empty w1 (writer: b); b waits on empty w2 (writer: a).
        assert!(snap
            .waits_for
            .iter()
            .any(|e| e.task == "a" && e.channel == "w1" && e.peers == vec!["b".to_string()]));
        let cycle = snap.waits_for_cycle().expect("cycle detected");
        assert!(cycle.contains(&"a".to_string()) && cycle.contains(&"b".to_string()));
    }

    #[test]
    fn probe_checkpoint_preserves_schedule_determinism() {
        // Arming a probe must not change the poll order — the service point
        // piggybacks on the existing checkpoint and never defers tasks.
        let without = interleaving_of(Schedule::Fifo);
        let log = Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut ex = Executor::new().with_probe(ExecProbe::new());
        for name in ["a", "b"] {
            let log = Rc::clone(&log);
            ex.spawn(
                name,
                Box::pin(async move {
                    for i in 0..3 {
                        log.borrow_mut().push(format!("{name}{i}"));
                        YieldN { remaining: 1 }.await;
                    }
                }),
            );
        }
        ex.run();
        assert_eq!(without, *log.borrow());
    }

    #[test]
    fn profiling_off_with_probe_still_does_no_timing() {
        // The overhead pin: observer plumbing must not re-introduce timing
        // syscalls or per-poll metrics under Profiling::Off.
        let probe = ExecProbe::new();
        let mut ex = Executor::new()
            .with_profiling(Profiling::Off)
            .with_probe(Arc::clone(&probe));
        for _ in 0..4 {
            ex.spawn(
                "t",
                Box::pin(async {
                    YieldN { remaining: 3 }.await;
                }),
            );
        }
        let (stats, _) = ex.run();
        assert_eq!(stats.timed_polls, 0);
        assert_eq!(stats.kernel_time, Duration::ZERO);
        assert_eq!(probe.progress(), 4);
    }

    #[test]
    fn fifo_fast_path_matches_policy_fifo_order() {
        // The O(1) pop_front fast path and the general FifoPolicy pick path
        // must produce the same schedule.
        let fast = interleaving_of(Schedule::Fifo);
        let log = Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut ex = Executor::new().with_policy(Box::new(FifoPolicy));
        for name in ["a", "b"] {
            let log = Rc::clone(&log);
            ex.spawn(
                name,
                Box::pin(async move {
                    for i in 0..3 {
                        log.borrow_mut().push(format!("{name}{i}"));
                        YieldN { remaining: 1 }.await;
                    }
                }),
            );
        }
        ex.run();
        assert_eq!(fast, *log.borrow());
    }
}

//! Fixed-capacity MPMC queues with broadcast semantics (§3.6).
//!
//! Kernels exchange data through these queues at runtime. Semantics follow
//! the paper exactly:
//!
//! * **fixed capacity** — producers suspend when the buffer is full relative
//!   to the *slowest* consumer,
//! * **broadcast** — every consumer receives a complete copy of all data
//!   written to the buffer,
//! * **per-producer order** — data from one producer stays in order, but
//!   data from multiple producers may interleave (MPMC merge),
//! * **closure** — when every producer handle is dropped, consumers observe
//!   end-of-stream (`None`) after draining.
//!
//! The implementation is a sequence-numbered ring: each consumer owns a
//! cursor; an element is retired once every open consumer has passed it.
//!
//! ## Storage policy
//!
//! The shared state sits behind one of two storage policies selected at
//! construction ([`ChannelMode`]): the default `Shared` mode guards it with
//! a `std::sync::Mutex` so the *same* channel type serves both the
//! cooperative single-threaded executor and the thread-per-kernel
//! functional simulator; `SingleThread` mode replaces the mutex with an
//! uncontended interior-mutability cell for the cooperative executor's hot
//! path (§5.2 — per-element synchronisation must stay negligible). Both
//! modes expose identical semantics, stats, and futures.

use cgsim_trace::{BlockSide, ChannelRef, Counter, Gauge, TraceEvent, Tracer};
use std::cell::{Cell, UnsafeCell};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

/// Selects the storage policy guarding a channel's shared state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(rename_all = "snake_case"))]
pub enum ChannelMode {
    /// Mutex-guarded state, safe for endpoints on any thread. Used by the
    /// thread-per-kernel simulator (`cgsim-threads`) and the historical
    /// default for [`Channel::new`].
    #[default]
    Shared,
    /// Uncontended single-thread cell for the cooperative executor: all
    /// endpoints and polls must stay on one thread (which the `!Send`
    /// `RuntimeContext` guarantees). Cross-thread access aborts in debug
    /// builds; re-entrant access panics in every build.
    SingleThread,
}

/// Counters describing channel activity, used for the paper's §5.2
/// synchronisation-overhead analysis.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ChannelStats {
    /// Elements accepted from producers.
    pub pushes: u64,
    /// Elements delivered to consumers (counted per consumer).
    pub pops: u64,
    /// Producer polls that had to suspend on a full buffer.
    pub blocked_writes: u64,
    /// Consumer polls that had to suspend on an empty buffer.
    pub blocked_reads: u64,
    /// High-water mark of buffered elements observed after any push (the
    /// peak occupancy relative to the slowest open consumer) — the dynamic
    /// counterpart of the static `CG060` occupancy bound.
    pub max_occupancy: u64,
}

struct ConsumerState {
    /// Absolute sequence number of the next element this consumer reads.
    cursor: u64,
    open: bool,
    waker: Option<Waker>,
}

/// Instrumentation state shared by all endpoints of one channel. Lives
/// inside `Inner`, so no extra locking is needed; the default value (from
/// `Tracer::default()`) records nothing.
struct ChannelTrace {
    tracer: Tracer,
    chan: ChannelRef,
    pushes: Counter,
    pops: Counter,
    blocked_writes: Counter,
    blocked_reads: Counter,
    occupancy: Gauge,
}

impl Default for ChannelTrace {
    fn default() -> Self {
        ChannelTrace {
            tracer: Tracer::default(),
            chan: ChannelRef(0),
            pushes: Counter::default(),
            pops: Counter::default(),
            blocked_writes: Counter::default(),
            blocked_reads: Counter::default(),
            occupancy: Gauge::default(),
        }
    }
}

struct Inner<T> {
    /// Retained elements; `buf[0]` has sequence number `base_seq`.
    buf: VecDeque<T>,
    base_seq: u64,
    capacity: usize,
    consumers: Vec<ConsumerState>,
    producers: usize,
    write_wakers: Vec<Waker>,
    stats: ChannelStats,
    trace: ChannelTrace,
}

impl<T> Inner<T> {
    fn head_seq(&self) -> u64 {
        self.base_seq + self.buf.len() as u64
    }

    fn min_open_cursor(&self) -> u64 {
        self.consumers
            .iter()
            .filter(|c| c.open)
            .map(|c| c.cursor)
            .min()
            .unwrap_or(self.head_seq())
    }

    /// Drop elements every open consumer has already read.
    fn retire(&mut self) {
        let min = self.min_open_cursor();
        while self.base_seq < min && !self.buf.is_empty() {
            self.buf.pop_front();
            self.base_seq += 1;
        }
    }

    fn wake_readers(&mut self) {
        let mut woke = false;
        for c in &mut self.consumers {
            if let Some(w) = c.waker.take() {
                w.wake();
                woke = true;
            }
        }
        if woke {
            self.trace.tracer.emit(TraceEvent::ChannelUnblock {
                channel: self.trace.chan,
                side: BlockSide::Read,
            });
        }
    }

    fn wake_writers(&mut self) {
        if !self.write_wakers.is_empty() {
            self.trace.tracer.emit(TraceEvent::ChannelUnblock {
                channel: self.trace.chan,
                side: BlockSide::Write,
            });
        }
        for w in self.write_wakers.drain(..) {
            w.wake();
        }
    }

    fn note_push_occupancy(&mut self) {
        if self.trace.tracer.is_enabled() {
            let occupancy = self.buf.len() as u64;
            self.trace.occupancy.set(occupancy as i64);
            self.trace.tracer.emit(TraceEvent::ChannelPush {
                channel: self.trace.chan,
                occupancy,
            });
        }
    }

    fn note_pop_occupancy(&mut self) {
        if self.trace.tracer.is_enabled() {
            let occupancy = self.buf.len() as u64;
            self.trace.occupancy.set(occupancy as i64);
            self.trace.tracer.emit(TraceEvent::ChannelPop {
                channel: self.trace.chan,
                occupancy,
            });
        }
    }

    fn note_blocked_write(&mut self, cx: &mut Context<'_>) {
        self.stats.blocked_writes += 1;
        self.trace.blocked_writes.inc();
        self.trace.tracer.emit(TraceEvent::ChannelBlock {
            channel: self.trace.chan,
            side: BlockSide::Write,
        });
        self.write_wakers.push(cx.waker().clone());
    }

    fn note_blocked_read(&mut self, idx: usize, cx: &mut Context<'_>) {
        self.stats.blocked_reads += 1;
        self.trace.blocked_reads.inc();
        self.trace.tracer.emit(TraceEvent::ChannelBlock {
            channel: self.trace.chan,
            side: BlockSide::Read,
        });
        self.consumers[idx].waker = Some(cx.waker().clone());
    }
}

/// Interior-mutability cell for [`ChannelMode::SingleThread`] channels.
///
/// Channels are held behind `Arc<dyn Any + Send + Sync>` in the kernel
/// library plumbing, so a plain `RefCell` cannot be used even though
/// fast-path channels never actually cross threads. This cell claims
/// `Send`/`Sync` and enforces the single-thread contract dynamically
/// instead: a borrow flag panics on re-entrant access (in every build), and
/// debug builds additionally pin the first accessing thread and assert all
/// later accesses come from it.
///
/// Soundness: the cooperative `RuntimeContext` is `!Send`, every endpoint
/// of a fast-path channel lives inside its kernel coroutines, and the
/// executor polls all coroutines on one thread — so in supported use the
/// cell is only ever touched from a single thread, where unsynchronised
/// access is sound.
struct LocalCell<T> {
    value: UnsafeCell<T>,
    borrowed: Cell<bool>,
    #[cfg(debug_assertions)]
    owner: Cell<Option<std::thread::ThreadId>>,
}

unsafe impl<T: Send> Send for LocalCell<T> {}
unsafe impl<T: Send> Sync for LocalCell<T> {}

impl<T> LocalCell<T> {
    fn new(value: T) -> Self {
        LocalCell {
            value: UnsafeCell::new(value),
            borrowed: Cell::new(false),
            #[cfg(debug_assertions)]
            owner: Cell::new(None),
        }
    }

    #[inline]
    fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        #[cfg(debug_assertions)]
        {
            let me = std::thread::current().id();
            match self.owner.get() {
                None => self.owner.set(Some(me)),
                Some(owner) => assert_eq!(
                    owner, me,
                    "single-thread channel accessed from a second thread; \
                     construct it with ChannelMode::Shared instead"
                ),
            }
        }
        assert!(
            !self.borrowed.replace(true),
            "single-thread channel accessed re-entrantly"
        );
        // SAFETY: the borrow flag above guarantees exclusivity within the
        // owning thread, and the type's contract (see docs) keeps all
        // accesses on that one thread.
        let out = f(unsafe { &mut *self.value.get() });
        self.borrowed.set(false);
        out
    }
}

/// Storage policy holder: one branch per state acquisition, chosen once at
/// channel construction.
enum Store<T> {
    Shared(Mutex<Inner<T>>),
    Local(LocalCell<Inner<T>>),
}

impl<T> Store<T> {
    #[inline]
    fn with<R>(&self, f: impl FnOnce(&mut Inner<T>) -> R) -> R {
        match self {
            Store::Shared(m) => f(&mut m.lock().unwrap()),
            Store::Local(c) => c.with(f),
        }
    }
}

/// A broadcast MPMC channel carrying elements of type `T`.
pub struct Channel<T> {
    store: Store<T>,
    mode: ChannelMode,
    /// Total elements ever pushed — readable without the lock for stats.
    pushed: AtomicU64,
}

impl<T: Clone> Channel<T> {
    /// Create a channel with the given element capacity (must be ≥ 1), in
    /// the thread-safe [`ChannelMode::Shared`] storage mode.
    pub fn new(capacity: usize) -> Arc<Self> {
        Channel::with_mode(capacity, ChannelMode::Shared)
    }

    /// Create a channel with the given element capacity (must be ≥ 1) and
    /// storage [`ChannelMode`].
    pub fn with_mode(capacity: usize, mode: ChannelMode) -> Arc<Self> {
        assert!(capacity >= 1, "channel capacity must be at least 1");
        let inner = Inner {
            buf: VecDeque::with_capacity(capacity),
            base_seq: 0,
            capacity,
            consumers: Vec::new(),
            producers: 0,
            write_wakers: Vec::new(),
            stats: ChannelStats::default(),
            trace: ChannelTrace::default(),
        };
        Arc::new(Channel {
            store: match mode {
                ChannelMode::Shared => Store::Shared(Mutex::new(inner)),
                ChannelMode::SingleThread => Store::Local(LocalCell::new(inner)),
            },
            mode,
            pushed: AtomicU64::new(0),
        })
    }

    /// The storage mode this channel was constructed with.
    pub fn mode(&self) -> ChannelMode {
        self.mode
    }

    /// Register a producer endpoint. The channel reports end-of-stream only
    /// after *all* producers have been dropped.
    pub fn add_producer(self: &Arc<Self>) -> Producer<T> {
        self.store.with(|inner| inner.producers += 1);
        Producer {
            chan: Arc::clone(self),
        }
    }

    /// Register a consumer endpoint. Each consumer independently receives
    /// every element (broadcast). Consumers must be registered before data
    /// flows; they start reading at the current head.
    pub fn add_consumer(self: &Arc<Self>) -> Consumer<T> {
        let idx = self.store.with(|inner| {
            let idx = inner.consumers.len();
            let cursor = inner.head_seq();
            inner.consumers.push(ConsumerState {
                cursor,
                open: true,
                waker: None,
            });
            idx
        });
        Consumer {
            chan: Arc::clone(self),
            idx,
        }
    }

    /// Attach this channel to a tracer under `name`: registers the channel
    /// id, exposes push/pop/block counters and an occupancy gauge in the
    /// metrics registry, and turns on event emission for the blocking
    /// paths. Harmless (and free) when `tracer` is disabled.
    pub fn instrument(&self, tracer: &Tracer, name: &str) {
        self.store.with(|inner| {
            let chan = tracer.register_channel(name, inner.capacity as u64);
            let labels = [("channel", name)];
            inner.trace = ChannelTrace {
                tracer: tracer.clone(),
                chan,
                pushes: tracer.counter("channel_pushes", &labels),
                pops: tracer.counter("channel_pops", &labels),
                blocked_writes: tracer.counter("channel_blocked_writes", &labels),
                blocked_reads: tracer.counter("channel_blocked_reads", &labels),
                occupancy: tracer.gauge("channel_occupancy", &labels),
            };
        });
    }

    /// Snapshot of the activity counters.
    pub fn stats(&self) -> ChannelStats {
        self.store.with(|inner| inner.stats)
    }

    /// Elements currently buffered.
    pub fn len(&self) -> usize {
        self.store.with(|inner| inner.buf.len())
    }

    /// Buffer capacity in elements.
    pub fn capacity(&self) -> usize {
        self.store.with(|inner| inner.capacity)
    }

    /// Whether no elements are currently buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total elements ever pushed (cheap, lock-free).
    pub fn total_pushed(&self) -> u64 {
        self.pushed.load(Ordering::Relaxed)
    }

    fn poll_send(&self, value: &mut Option<T>, cx: &mut Context<'_>) -> Poll<()> {
        self.store.with(|inner| {
            // Full relative to the slowest open consumer?
            let occupied = (inner.head_seq() - inner.min_open_cursor()) as usize;
            if occupied >= inner.capacity && inner.consumers.iter().any(|c| c.open) {
                inner.note_blocked_write(cx);
                return Poll::Pending;
            }
            let v = value.take().expect("SendFuture polled after completion");
            inner.buf.push_back(v);
            inner.stats.pushes += 1;
            inner.trace.pushes.inc();
            self.pushed.fetch_add(1, Ordering::Relaxed);
            // With no open consumers the element is immediately retired —
            // writing to a stream nobody reads succeeds and discards, which is
            // what lets upstream kernels drain during shutdown.
            inner.retire();
            inner.stats.max_occupancy = inner.stats.max_occupancy.max(inner.buf.len() as u64);
            inner.note_push_occupancy();
            inner.wake_readers();
            Poll::Ready(())
        })
    }

    /// Batched send: push as many of `values[*sent..]` as fit in one state
    /// acquisition, waking consumers once per batch. Completes when every
    /// element has been accepted.
    fn poll_send_slice(&self, values: &[T], sent: &mut usize, cx: &mut Context<'_>) -> Poll<()> {
        if *sent >= values.len() {
            return Poll::Ready(());
        }
        self.store.with(|inner| {
            let remaining = values.len() - *sent;
            if !inner.consumers.iter().any(|c| c.open) {
                // No open consumers: the whole remainder succeeds and is
                // discarded (same contract as the element-wise path, which
                // pushes then immediately retires).
                inner.base_seq += remaining as u64;
                inner.stats.pushes += remaining as u64;
                inner.trace.pushes.add(remaining as u64);
                self.pushed.fetch_add(remaining as u64, Ordering::Relaxed);
                *sent = values.len();
                inner.note_push_occupancy();
                return Poll::Ready(());
            }
            let occupied = (inner.head_seq() - inner.min_open_cursor()) as usize;
            let free = inner.capacity.saturating_sub(occupied);
            let batch = free.min(remaining);
            if batch > 0 {
                inner
                    .buf
                    .extend(values[*sent..*sent + batch].iter().cloned());
                *sent += batch;
                inner.stats.pushes += batch as u64;
                inner.trace.pushes.add(batch as u64);
                self.pushed.fetch_add(batch as u64, Ordering::Relaxed);
                inner.retire();
                inner.stats.max_occupancy = inner.stats.max_occupancy.max(inner.buf.len() as u64);
                inner.note_push_occupancy();
                inner.wake_readers();
            }
            if *sent == values.len() {
                Poll::Ready(())
            } else {
                // A partial-progress poll suspends but is not *blocked*: only
                // a poll that moved nothing counts against blocked_writes,
                // mirroring the element path's full-buffer condition.
                if batch == 0 {
                    inner.stats.blocked_writes += 1;
                    inner.trace.blocked_writes.inc();
                    inner.trace.tracer.emit(TraceEvent::ChannelBlock {
                        channel: inner.trace.chan,
                        side: BlockSide::Write,
                    });
                }
                inner.write_wakers.push(cx.waker().clone());
                Poll::Pending
            }
        })
    }

    fn poll_recv(&self, idx: usize, cx: &mut Context<'_>) -> Poll<Option<T>> {
        self.store.with(|inner| {
            let cursor = inner.consumers[idx].cursor;
            if cursor < inner.head_seq() {
                let offset = (cursor - inner.base_seq) as usize;
                let value = inner.buf[offset].clone();
                inner.consumers[idx].cursor += 1;
                inner.stats.pops += 1;
                inner.trace.pops.inc();
                inner.retire();
                inner.note_pop_occupancy();
                inner.wake_writers();
                Poll::Ready(Some(value))
            } else if inner.producers == 0 {
                Poll::Ready(None)
            } else {
                inner.note_blocked_read(idx, cx);
                Poll::Pending
            }
        })
    }

    /// Batched receive: drain up to `max` available elements in one state
    /// acquisition, waking producers once per batch. Resolves to `None` at
    /// end-of-stream.
    fn poll_recv_chunk(
        &self,
        idx: usize,
        max: usize,
        cx: &mut Context<'_>,
    ) -> Poll<Option<Vec<T>>> {
        self.store.with(|inner| {
            let cursor = inner.consumers[idx].cursor;
            let available = (inner.head_seq() - cursor) as usize;
            if available > 0 {
                let batch = available.min(max);
                let start = (cursor - inner.base_seq) as usize;
                let chunk: Vec<T> = inner.buf.range(start..start + batch).cloned().collect();
                inner.consumers[idx].cursor += batch as u64;
                inner.stats.pops += batch as u64;
                inner.trace.pops.add(batch as u64);
                inner.retire();
                inner.note_pop_occupancy();
                inner.wake_writers();
                Poll::Ready(Some(chunk))
            } else if inner.producers == 0 {
                Poll::Ready(None)
            } else {
                inner.note_blocked_read(idx, cx);
                Poll::Pending
            }
        })
    }

    fn close_producer(&self) {
        self.store.with(|inner| {
            inner.producers -= 1;
            if inner.producers == 0 {
                inner.wake_readers();
            }
        });
    }

    fn close_consumer(&self, idx: usize) {
        self.store.with(|inner| {
            inner.consumers[idx].open = false;
            inner.consumers[idx].waker = None;
            inner.retire();
            inner.wake_writers();
        });
    }
}

/// Type-erased administrative view over a channel: post-creation
/// instrumentation and statistics, independent of the element type. The
/// runtime context holds one per connector (inside
/// [`crate::AnyChannel`]) so it can wire tracing and aggregate stats
/// without knowing `T`.
pub trait ChannelAdmin: Send + Sync {
    /// See [`Channel::instrument`].
    fn instrument(&self, tracer: &Tracer, name: &str);
    /// See [`Channel::stats`].
    fn stats(&self) -> ChannelStats;
    /// See [`Channel::total_pushed`].
    fn total_pushed(&self) -> u64;
    /// See [`Channel::len`].
    fn occupancy(&self) -> usize;
    /// See [`Channel::capacity`].
    fn capacity(&self) -> usize;
}

impl<T: cgsim_core::StreamData> ChannelAdmin for Channel<T> {
    fn instrument(&self, tracer: &Tracer, name: &str) {
        Channel::instrument(self, tracer, name)
    }
    fn stats(&self) -> ChannelStats {
        Channel::stats(self)
    }
    fn total_pushed(&self) -> u64 {
        Channel::total_pushed(self)
    }
    fn occupancy(&self) -> usize {
        Channel::len(self)
    }
    fn capacity(&self) -> usize {
        Channel::capacity(self)
    }
}

/// Producer endpoint; dropping it releases the channel (closing it once all
/// producers are gone).
pub struct Producer<T: Clone> {
    chan: Arc<Channel<T>>,
}

impl<T: Clone> Producer<T> {
    /// Send one element, suspending while the buffer is full.
    pub fn send(&mut self, value: T) -> SendFuture<'_, T> {
        SendFuture {
            chan: &self.chan,
            value: Some(value),
        }
    }

    /// Send a whole slice of elements, moving as many as fit per state
    /// acquisition and waking consumers once per batch instead of once per
    /// element. Equivalent to awaiting [`Producer::send`] per element, but
    /// with batched synchronisation (§5.2 window-port fast path).
    pub fn push_slice(&mut self, values: Vec<T>) -> PushSliceFuture<'_, T> {
        PushSliceFuture {
            chan: &self.chan,
            values,
            sent: 0,
        }
    }

    /// The channel this endpoint writes to.
    pub fn channel(&self) -> &Arc<Channel<T>> {
        &self.chan
    }
}

impl<T: Clone> Drop for Producer<T> {
    fn drop(&mut self) {
        self.chan.close_producer();
    }
}

/// Consumer endpoint; dropping it releases its cursor so it no longer
/// throttles producers.
pub struct Consumer<T: Clone> {
    chan: Arc<Channel<T>>,
    idx: usize,
}

impl<T: Clone> Consumer<T> {
    /// Receive the next element, suspending while the buffer is empty.
    /// Resolves to `None` once all producers are dropped and the stream is
    /// drained.
    pub fn recv(&mut self) -> RecvFuture<'_, T> {
        RecvFuture {
            chan: &self.chan,
            idx: self.idx,
        }
    }

    /// Receive up to `max` elements (at least one) in one state
    /// acquisition, waking producers once per batch. Resolves to `None`
    /// once all producers are dropped and the stream is drained; otherwise
    /// yields `1..=max` elements in stream order.
    pub fn pop_chunk(&mut self, max: usize) -> RecvChunkFuture<'_, T> {
        assert!(max >= 1, "pop_chunk needs a chunk size of at least 1");
        RecvChunkFuture {
            chan: &self.chan,
            idx: self.idx,
            max,
        }
    }

    /// The channel this endpoint reads from.
    pub fn channel(&self) -> &Arc<Channel<T>> {
        &self.chan
    }
}

impl<T: Clone> Drop for Consumer<T> {
    fn drop(&mut self) {
        self.chan.close_consumer(self.idx);
    }
}

/// Future returned by [`Producer::send`].
pub struct SendFuture<'a, T: Clone> {
    chan: &'a Channel<T>,
    value: Option<T>,
}

impl<T: Clone> std::future::Future for SendFuture<'_, T> {
    type Output = ();

    fn poll(self: std::pin::Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        this.chan.poll_send(&mut this.value, cx)
    }
}

impl<T: Clone> Unpin for SendFuture<'_, T> {}

/// Future returned by [`Producer::push_slice`].
pub struct PushSliceFuture<'a, T: Clone> {
    chan: &'a Channel<T>,
    values: Vec<T>,
    sent: usize,
}

impl<T: Clone> std::future::Future for PushSliceFuture<'_, T> {
    type Output = ();

    fn poll(self: std::pin::Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        this.chan.poll_send_slice(&this.values, &mut this.sent, cx)
    }
}

impl<T: Clone> Unpin for PushSliceFuture<'_, T> {}

/// Future returned by [`Consumer::recv`].
pub struct RecvFuture<'a, T: Clone> {
    chan: &'a Channel<T>,
    idx: usize,
}

impl<T: Clone> std::future::Future for RecvFuture<'_, T> {
    type Output = Option<T>;

    fn poll(self: std::pin::Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<T>> {
        self.chan.poll_recv(self.idx, cx)
    }
}

impl<T: Clone> Unpin for RecvFuture<'_, T> {}

/// Future returned by [`Consumer::pop_chunk`].
pub struct RecvChunkFuture<'a, T: Clone> {
    chan: &'a Channel<T>,
    idx: usize,
    max: usize,
}

impl<T: Clone> std::future::Future for RecvChunkFuture<'_, T> {
    type Output = Option<Vec<T>>;

    fn poll(self: std::pin::Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<Vec<T>>> {
        self.chan.poll_recv_chunk(self.idx, self.max, cx)
    }
}

impl<T: Clone> Unpin for RecvChunkFuture<'_, T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::block_on;

    #[test]
    fn single_producer_single_consumer_fifo() {
        let chan = Channel::new(4);
        let mut tx = chan.add_producer();
        let mut rx = chan.add_consumer();
        block_on(async {
            for i in 0..4 {
                tx.send(i).await;
            }
            drop(tx);
            let mut got = Vec::new();
            while let Some(v) = rx.recv().await {
                got.push(v);
            }
            assert_eq!(got, vec![0, 1, 2, 3]);
        });
    }

    #[test]
    fn broadcast_delivers_full_copy_to_each_consumer() {
        let chan = Channel::new(8);
        let mut tx = chan.add_producer();
        let mut rx1 = chan.add_consumer();
        let mut rx2 = chan.add_consumer();
        block_on(async {
            for i in 0..5 {
                tx.send(i * 10).await;
            }
            drop(tx);
            let mut a = Vec::new();
            while let Some(v) = rx1.recv().await {
                a.push(v);
            }
            let mut b = Vec::new();
            while let Some(v) = rx2.recv().await {
                b.push(v);
            }
            assert_eq!(a, vec![0, 10, 20, 30, 40]);
            assert_eq!(b, a);
        });
    }

    #[test]
    fn recv_none_after_all_producers_drop() {
        let chan = Channel::<u32>::new(2);
        let tx1 = chan.add_producer();
        let tx2 = chan.add_producer();
        let mut rx = chan.add_consumer();
        drop(tx1);
        // Still one producer open: a poll must stay pending, not None.
        {
            let waker = std::task::Waker::noop();
            let mut cx = Context::from_waker(waker);
            assert!(matches!(chan.poll_recv(0, &mut cx), Poll::Pending));
        }
        drop(tx2);
        assert_eq!(block_on(async { rx.recv().await }), None);
    }

    #[test]
    fn capacity_throttles_on_slowest_consumer() {
        let chan = Channel::new(2);
        let _tx = chan.add_producer();
        let mut fast = chan.add_consumer();
        let _slow = chan.add_consumer();
        let waker = std::task::Waker::noop();
        let mut cx = Context::from_waker(waker);

        // Two sends fit; the third must block because `slow` has read nothing.
        assert!(matches!(
            chan.poll_send(&mut Some(1), &mut cx),
            Poll::Ready(())
        ));
        assert!(matches!(
            chan.poll_send(&mut Some(2), &mut cx),
            Poll::Ready(())
        ));
        assert!(matches!(
            chan.poll_send(&mut Some(3), &mut cx),
            Poll::Pending
        ));
        // Fast consumer draining does not help: slow still pins the buffer.
        block_on(async {
            assert_eq!(fast.recv().await, Some(1));
            assert_eq!(fast.recv().await, Some(2));
        });
        assert!(matches!(
            chan.poll_send(&mut Some(3), &mut cx),
            Poll::Pending
        ));
        assert_eq!(chan.stats().blocked_writes, 2);
    }

    #[test]
    fn dropping_a_consumer_unpins_the_buffer() {
        let chan = Channel::new(1);
        let _tx = chan.add_producer();
        let slow = chan.add_consumer();
        let waker = std::task::Waker::noop();
        let mut cx = Context::from_waker(waker);
        assert!(matches!(
            chan.poll_send(&mut Some(1), &mut cx),
            Poll::Ready(())
        ));
        assert!(matches!(
            chan.poll_send(&mut Some(2), &mut cx),
            Poll::Pending
        ));
        drop(slow);
        assert!(matches!(
            chan.poll_send(&mut Some(2), &mut cx),
            Poll::Ready(())
        ));
    }

    #[test]
    fn writes_without_consumers_are_discarded() {
        let chan = Channel::new(1);
        let mut tx = chan.add_producer();
        block_on(async {
            // Capacity is 1, yet all sends complete: nothing retains data.
            for i in 0..10 {
                tx.send(i).await;
            }
        });
        assert_eq!(chan.len(), 0);
        assert_eq!(chan.total_pushed(), 10);
    }

    #[test]
    fn multi_producer_merge_preserves_per_producer_order() {
        let chan = Channel::new(64);
        let mut tx1 = chan.add_producer();
        let mut tx2 = chan.add_producer();
        let mut rx = chan.add_consumer();
        block_on(async {
            for i in 0..10 {
                tx1.send(i).await; // producer 1: 0..10
                tx2.send(100 + i).await; // producer 2: 100..110
            }
            drop(tx1);
            drop(tx2);
            let mut got = Vec::new();
            while let Some(v) = rx.recv().await {
                got.push(v);
            }
            let p1: Vec<i32> = got.iter().copied().filter(|v| *v < 100).collect();
            let p2: Vec<i32> = got.iter().copied().filter(|v| *v >= 100).collect();
            assert_eq!(p1, (0..10).collect::<Vec<_>>());
            assert_eq!(p2, (100..110).collect::<Vec<_>>());
        });
    }

    #[test]
    fn stats_count_pops_per_consumer() {
        let chan = Channel::new(8);
        let mut tx = chan.add_producer();
        let mut rx1 = chan.add_consumer();
        let mut rx2 = chan.add_consumer();
        block_on(async {
            tx.send(1).await;
            tx.send(2).await;
            drop(tx);
            while rx1.recv().await.is_some() {}
            while rx2.recv().await.is_some() {}
        });
        let stats = chan.stats();
        assert_eq!(stats.pushes, 2);
        assert_eq!(stats.pops, 4);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = Channel::<u8>::new(0);
    }

    /// The semantics tests above all run against the default `Shared`
    /// storage; this block re-runs the load-bearing ones on the
    /// single-thread fast path, which must be observably identical.
    mod single_thread_mode {
        use super::*;

        fn fast<T: Clone>(capacity: usize) -> Arc<Channel<T>> {
            Channel::with_mode(capacity, ChannelMode::SingleThread)
        }

        #[test]
        fn mode_is_recorded() {
            assert_eq!(fast::<u8>(1).mode(), ChannelMode::SingleThread);
            assert_eq!(Channel::<u8>::new(1).mode(), ChannelMode::Shared);
        }

        #[test]
        fn fifo_roundtrip_and_eos() {
            let chan = fast(16);
            let mut tx = chan.add_producer();
            let mut rx = chan.add_consumer();
            block_on(async {
                for i in 0..12 {
                    tx.send(i).await;
                }
                drop(tx);
                let mut got = Vec::new();
                while let Some(v) = rx.recv().await {
                    got.push(v);
                }
                assert_eq!(got, (0..12).collect::<Vec<_>>());
            });
        }

        #[test]
        fn backpressure_matches_shared_mode() {
            let chan = fast(2);
            let _tx = chan.add_producer();
            let _rx = chan.add_consumer();
            let waker = std::task::Waker::noop();
            let mut cx = Context::from_waker(waker);
            assert!(matches!(
                chan.poll_send(&mut Some(1), &mut cx),
                Poll::Ready(())
            ));
            assert!(matches!(
                chan.poll_send(&mut Some(2), &mut cx),
                Poll::Ready(())
            ));
            assert!(matches!(
                chan.poll_send(&mut Some(3), &mut cx),
                Poll::Pending
            ));
            assert_eq!(chan.stats().blocked_writes, 1);
        }

        #[test]
        fn broadcast_copies_per_consumer() {
            let chan = fast(8);
            let mut tx = chan.add_producer();
            let mut rx1 = chan.add_consumer();
            let mut rx2 = chan.add_consumer();
            block_on(async {
                for i in 0..5 {
                    tx.send(i).await;
                }
                drop(tx);
                let mut a = Vec::new();
                while let Some(v) = rx1.recv().await {
                    a.push(v);
                }
                let mut b = Vec::new();
                while let Some(v) = rx2.recv().await {
                    b.push(v);
                }
                assert_eq!(a, (0..5).collect::<Vec<_>>());
                assert_eq!(b, a);
            });
        }
    }

    mod batched {
        use super::*;

        #[test]
        fn push_slice_roundtrips_through_pop_chunk() {
            for mode in [ChannelMode::Shared, ChannelMode::SingleThread] {
                let chan = Channel::with_mode(4, mode);
                let mut tx = chan.add_producer();
                let mut rx = chan.add_consumer();
                let data: Vec<i64> = (0..33).collect();
                let expect = data.clone();
                block_on(async move {
                    // Slice larger than capacity: partial progress per poll,
                    // drained concurrently by the chunk reader below would
                    // need two tasks; here interleave manually via executor.
                    let mut ex = crate::executor::Executor::new();
                    ex.spawn(
                        "tx",
                        Box::pin(async move {
                            tx.push_slice(data).await;
                        }),
                    );
                    let got = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
                    let sink = std::rc::Rc::clone(&got);
                    ex.spawn(
                        "rx",
                        Box::pin(async move {
                            while let Some(chunk) = rx.pop_chunk(8).await {
                                sink.borrow_mut().extend(chunk);
                            }
                        }),
                    );
                    let (_, stalled) = ex.run();
                    assert!(stalled.is_empty(), "batched pipeline deadlocked");
                    assert_eq!(*got.borrow(), expect);
                });
            }
        }

        #[test]
        fn empty_slice_completes_without_stats() {
            let chan = Channel::<i64>::new(1);
            let mut tx = chan.add_producer();
            let _rx = chan.add_consumer();
            block_on(async {
                tx.push_slice(Vec::new()).await;
            });
            assert_eq!(chan.stats().pushes, 0);
            assert_eq!(chan.total_pushed(), 0);
        }

        #[test]
        fn push_slice_without_consumers_discards_everything() {
            let chan = Channel::new(2);
            let mut tx = chan.add_producer();
            block_on(async {
                tx.push_slice((0..100).collect()).await;
            });
            assert_eq!(chan.len(), 0);
            assert_eq!(chan.total_pushed(), 100);
            assert_eq!(chan.stats().pushes, 100);
        }

        #[test]
        fn pop_chunk_returns_at_most_max_and_none_at_eos() {
            let chan = Channel::new(16);
            let mut tx = chan.add_producer();
            let mut rx = chan.add_consumer();
            block_on(async {
                tx.push_slice((0..10i32).collect()).await;
                drop(tx);
                let first = rx.pop_chunk(4).await.unwrap();
                assert_eq!(first, vec![0, 1, 2, 3]);
                let rest = rx.pop_chunk(64).await.unwrap();
                assert_eq!(rest, (4..10).collect::<Vec<_>>());
                assert_eq!(rx.pop_chunk(4).await, None);
            });
        }

        #[test]
        fn chunk_pops_release_writers_once_per_batch() {
            let chan = Channel::new(4);
            let _tx = chan.add_producer();
            let _rx = chan.add_consumer();
            let waker = std::task::Waker::noop();
            let mut cx = Context::from_waker(waker);
            // Fill, then block a whole-slice write.
            for i in 0..4 {
                assert!(matches!(
                    chan.poll_send(&mut Some(i), &mut cx),
                    Poll::Ready(())
                ));
            }
            let slice = vec![10, 11, 12];
            let mut sent = 0;
            assert!(matches!(
                chan.poll_send_slice(&slice, &mut sent, &mut cx),
                Poll::Pending
            ));
            assert_eq!(sent, 0);
            assert_eq!(chan.stats().blocked_writes, 1);
            // One chunk pop frees the buffer; the retry completes in one go.
            match chan.poll_recv_chunk(0, 4, &mut cx) {
                Poll::Ready(Some(chunk)) => assert_eq!(chunk, vec![0, 1, 2, 3]),
                other => panic!("expected a full chunk, got {other:?}"),
            }
            assert!(matches!(
                chan.poll_send_slice(&slice, &mut sent, &mut cx),
                Poll::Ready(())
            ));
            assert_eq!(sent, 3);
            assert_eq!(chan.stats().blocked_writes, 1);
        }
    }

    #[cfg(feature = "trace")]
    #[test]
    fn instrumented_channel_emits_events_and_counters() {
        let tracer = Tracer::ring(1024);
        let chan = Channel::new(1);
        chan.instrument(&tracer, "c0");
        let mut tx = chan.add_producer();
        let mut rx = chan.add_consumer();
        let waker = std::task::Waker::noop();
        let mut cx = Context::from_waker(waker);
        // Fill the depth-1 buffer, then block once on the second send.
        assert!(matches!(
            chan.poll_send(&mut Some(1u32), &mut cx),
            Poll::Ready(())
        ));
        assert!(matches!(
            chan.poll_send(&mut Some(2), &mut cx),
            Poll::Pending
        ));
        block_on(async {
            assert_eq!(rx.recv().await, Some(1));
            tx.send(2).await;
            assert_eq!(rx.recv().await, Some(2));
        });
        let snap = tracer.snapshot();
        assert_eq!(
            snap.metrics.counter_value("channel_pushes{channel=c0}"),
            Some(2)
        );
        assert_eq!(
            snap.metrics.counter_value("channel_pops{channel=c0}"),
            Some(2)
        );
        assert_eq!(
            snap.metrics
                .counter_value("channel_blocked_writes{channel=c0}"),
            Some(1)
        );
        assert_eq!(snap.channels.len(), 1);
        assert_eq!(snap.channels[0].name, "c0");
        assert_eq!(snap.channels[0].capacity, 1);
        let kinds: Vec<&str> = snap.records.iter().map(|r| r.event.kind()).collect();
        assert!(kinds.contains(&"channel_push"));
        assert!(kinds.contains(&"channel_pop"));
        assert!(kinds.contains(&"channel_block"));
        assert!(kinds.contains(&"channel_unblock"));
    }
}

/// Property tests: the broadcast/backpressure/conservation contract must
/// hold under *arbitrary* poll interleavings, not just the handful of
/// orderings the unit tests pin down. A seeded scheduler polls endpoints in
/// random order until the channel drains.
///
/// Skipped under Miri: proptest's exploration budget is far too slow for
/// the interpreter; the deterministic unit tests above cover the same
/// aliasing-sensitive paths.
#[cfg(all(test, not(miri)))]
mod props {
    use super::*;
    use proptest::collection::vec;
    use proptest::prelude::*;
    use proptest::TestCaseError;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use std::task::{Context, Poll};

    /// Push `streams[p]` through one channel (one producer per stream, all
    /// consumers registered up front) polling endpoints in the random order
    /// chosen by `order_seed`. Asserts every stats counter is monotone
    /// non-decreasing across each operation; returns what each consumer saw.
    fn run_interleaved(
        streams: &[Vec<i64>],
        capacity: usize,
        n_consumers: usize,
        order_seed: u64,
    ) -> Result<Vec<Vec<i64>>, TestCaseError> {
        let chan = Channel::new(capacity);
        // (producer handle, next index into its stream); slot goes None once
        // the stream is exhausted, dropping the handle to close the channel.
        let mut txs: Vec<Option<(Producer<i64>, usize)>> = streams
            .iter()
            .map(|_| Some((chan.add_producer(), 0)))
            .collect();
        let _rxs: Vec<Consumer<i64>> = (0..n_consumers).map(|_| chan.add_consumer()).collect();

        let waker = std::task::Waker::noop();
        let mut cx = Context::from_waker(waker);
        let mut rng = StdRng::seed_from_u64(order_seed);
        let mut outs = vec![Vec::new(); n_consumers];
        let mut done = vec![false; n_consumers];
        let mut prev = chan.stats();
        let mut spins = 0u32;
        while !done.iter().all(|&d| d) {
            spins += 1;
            prop_assert!(spins < 1_000_000, "random interleaving did not drain");
            let pick = rng.random_range(0usize..txs.len() + n_consumers);
            if pick < txs.len() {
                if let Some((_tx, pos)) = &mut txs[pick] {
                    if *pos >= streams[pick].len() {
                        txs[pick] = None;
                    } else {
                        let mut v = Some(streams[pick][*pos]);
                        if let Poll::Ready(()) = chan.poll_send(&mut v, &mut cx) {
                            *pos += 1;
                        }
                    }
                }
            } else {
                let ci = pick - txs.len();
                if !done[ci] {
                    match chan.poll_recv(ci, &mut cx) {
                        Poll::Ready(Some(v)) => outs[ci].push(v),
                        Poll::Ready(None) => done[ci] = true,
                        Poll::Pending => {}
                    }
                }
            }
            let now = chan.stats();
            prop_assert!(
                now.pushes >= prev.pushes
                    && now.pops >= prev.pops
                    && now.blocked_writes >= prev.blocked_writes
                    && now.blocked_reads >= prev.blocked_reads,
                "stats counter went backwards: {prev:?} -> {now:?}"
            );
            prev = now;
        }
        let total: u64 = streams.iter().map(|s| s.len() as u64).sum();
        prop_assert_eq!(prev.pushes, total);
        prop_assert_eq!(prev.pops, total * n_consumers as u64);
        Ok(outs)
    }

    /// Outcome of pushing one stream through a channel with `n_consumers`,
    /// used to compare the batched and element-wise paths.
    struct DrainOutcome {
        outs: Vec<Vec<i64>>,
        stats: ChannelStats,
    }

    /// Drive `data` through a channel of `capacity` with `n_consumers`,
    /// closing consumer `close_at.0` after it has read `close_at.1`
    /// elements. `batched = Some(chunk)` uses `push_slice`/`pop_chunk` with
    /// the given batch size; `None` uses the element-wise loop. Round-robin
    /// polling (producer, then each consumer) keeps the interleaving
    /// identical across both paths so the observable outcome must match.
    fn drain_channel(
        data: &[i64],
        capacity: usize,
        n_consumers: usize,
        mode: ChannelMode,
        close_at: Option<(usize, usize)>,
        batched: Option<usize>,
    ) -> Result<DrainOutcome, TestCaseError> {
        let chan = Channel::with_mode(capacity, mode);
        let mut tx = Some(chan.add_producer());
        let mut rxs: Vec<Option<Consumer<i64>>> = (0..n_consumers)
            .map(|_| Some(chan.add_consumer()))
            .collect();
        let waker = std::task::Waker::noop();
        let mut cx = Context::from_waker(waker);

        let mut sent = 0usize;
        let mut outs = vec![Vec::new(); n_consumers];
        let mut done = vec![false; n_consumers];
        let mut spins = 0u32;
        loop {
            spins += 1;
            prop_assert!(spins < 1_000_000, "drain did not converge");
            // Producer turn; the handle is held until the stream drains.
            if tx.is_some() {
                if sent >= data.len() {
                    tx = None;
                } else if batched.is_some() {
                    let _ = chan.poll_send_slice(data, &mut sent, &mut cx);
                } else {
                    let mut v = Some(data[sent]);
                    if let Poll::Ready(()) = chan.poll_send(&mut v, &mut cx) {
                        sent += 1;
                    }
                }
            }
            // Consumer turns.
            for ci in 0..n_consumers {
                if done[ci] || rxs[ci].is_none() {
                    continue;
                }
                match batched {
                    Some(chunk) => match chan.poll_recv_chunk(ci, chunk, &mut cx) {
                        Poll::Ready(Some(vs)) => outs[ci].extend(vs),
                        Poll::Ready(None) => done[ci] = true,
                        Poll::Pending => {}
                    },
                    None => match chan.poll_recv(ci, &mut cx) {
                        Poll::Ready(Some(v)) => outs[ci].push(v),
                        Poll::Ready(None) => done[ci] = true,
                        Poll::Pending => {}
                    },
                }
                if let Some((idx, after)) = close_at {
                    if ci == idx && outs[ci].len() >= after && rxs[ci].is_some() {
                        rxs[ci] = None; // drop the handle: early close
                        done[ci] = true;
                    }
                }
            }
            if done.iter().all(|&d| d) && tx.is_none() {
                break;
            }
        }
        Ok(DrainOutcome {
            outs,
            stats: chan.stats(),
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn capacity_one_always_backpressures(data in vec(any::<i64>(), 1..24)) {
            // With depth 1 and an open consumer, every element must round-trip
            // through exactly one blocked write before the next send fits.
            let chan = Channel::new(1);
            let _tx = chan.add_producer();
            let _rx = chan.add_consumer();
            let waker = std::task::Waker::noop();
            let mut cx = Context::from_waker(waker);
            for (i, &v) in data.iter().enumerate() {
                prop_assert!(matches!(chan.poll_send(&mut Some(v), &mut cx), Poll::Ready(())));
                prop_assert!(matches!(chan.poll_send(&mut Some(v), &mut cx), Poll::Pending));
                prop_assert_eq!(chan.stats().blocked_writes, i as u64 + 1);
                match chan.poll_recv(0, &mut cx) {
                    Poll::Ready(Some(got)) => prop_assert_eq!(got, v),
                    other => prop_assert!(false, "expected an element, got {other:?}"),
                }
            }
        }

        #[test]
        fn broadcast_delivers_stream_exactly_once_per_consumer(
            data in vec(any::<i64>(), 0..32),
            capacity in 1usize..5,
            consumers in 1usize..4,
            order_seed in any::<u64>(),
        ) {
            let outs =
                run_interleaved(std::slice::from_ref(&data), capacity, consumers, order_seed)?;
            for got in &outs {
                // Single producer: order is preserved, nothing dropped or duplicated.
                prop_assert_eq!(got, &data);
            }
        }

        #[test]
        fn merge_keeps_per_producer_order(
            a in vec(0i64..1_000_000, 0..20),
            b in vec(0i64..1_000_000, 0..20),
            capacity in 1usize..4,
            order_seed in any::<u64>(),
        ) {
            // Tag streams by parity so the merged output can be de-interleaved.
            let sa: Vec<i64> = a.iter().map(|&v| v * 2).collect();
            let sb: Vec<i64> = b.iter().map(|&v| v * 2 + 1).collect();
            let outs = run_interleaved(&[sa.clone(), sb.clone()], capacity, 1, order_seed)?;
            let ga: Vec<i64> = outs[0].iter().copied().filter(|v| v % 2 == 0).collect();
            let gb: Vec<i64> = outs[0].iter().copied().filter(|v| v % 2 == 1).collect();
            prop_assert_eq!(ga, sa);
            prop_assert_eq!(gb, sb);
        }

        /// `push_slice`/`pop_chunk` must be observably equivalent to the
        /// element-wise loop: identical per-consumer data and push/pop
        /// counters under random capacities, consumer counts, chunk sizes,
        /// storage modes, and early-close points. Blocked counters cannot
        /// match exactly (batching is the point: fewer suspensions), but the
        /// batched path must never block *more* than element-wise.
        #[test]
        fn slice_and_chunk_paths_match_element_wise(
            data in vec(any::<i64>(), 0..48),
            capacity in 1usize..8,
            consumers in 1usize..4,
            chunk in 1usize..10,
            knobs in any::<u64>(),
        ) {
            // One u64 folds the remaining knobs so the parameter list stays
            // within the strategy-tuple arity the test harness supports.
            let mode = if knobs & 1 == 0 { ChannelMode::Shared } else { ChannelMode::SingleThread };
            let close_at = (knobs & 2 != 0)
                .then_some(((knobs >> 2) as usize % consumers, (knobs >> 8) as usize % 48));
            let elem = drain_channel(&data, capacity, consumers, mode, close_at, None)?;
            let batch = drain_channel(&data, capacity, consumers, mode, close_at, Some(chunk))?;
            // Early-closed consumers may straddle a chunk boundary: the
            // batched reader can overshoot the close point by up to one
            // chunk, so compare the common prefix for that consumer and
            // exact data for all others.
            for ci in 0..consumers {
                if close_at.is_some_and(|(idx, _)| idx == ci) {
                    let n = elem.outs[ci].len().min(batch.outs[ci].len());
                    prop_assert!(
                        elem.outs[ci][..n] == batch.outs[ci][..n],
                        "early-closed consumer prefix diverged"
                    );
                } else {
                    prop_assert_eq!(&elem.outs[ci], &batch.outs[ci]);
                }
            }
            prop_assert_eq!(elem.stats.pushes, batch.stats.pushes);
            if close_at.is_none() {
                prop_assert_eq!(elem.stats.pops, batch.stats.pops);
            }
            prop_assert!(
                batch.stats.blocked_writes <= elem.stats.blocked_writes,
                "batching increased blocked writes: {} > {}",
                batch.stats.blocked_writes,
                elem.stats.blocked_writes
            );
            prop_assert!(
                batch.stats.blocked_reads <= elem.stats.blocked_reads,
                "batching increased blocked reads: {} > {}",
                batch.stats.blocked_reads,
                elem.stats.blocked_reads
            );
        }
    }
}

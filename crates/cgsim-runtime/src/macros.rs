//! The `compute_kernel!` macro (§3.3, Figure 3).
//!
//! Mirrors the paper's `COMPUTE_KERNEL(realm, name, ports…) { body }` macro:
//! the kernel is written as an ordinary function over typed read/write
//! ports, and the macro wraps it in a generated type carrying the execution
//! realm and I/O-port metadata (collected in C++ via type traits; here via
//! the port declarations themselves). The generated type implements:
//!
//! * [`cgsim_core::KernelDecl`] — compile-time metadata for graph building
//!   and extraction,
//! * [`crate::KernelImpl`] — the executable factory: typed channel
//!   construction per port and coroutine instantiation,
//! * an `invoke` method — the typed graph-construction call used inside
//!   graph-definition closures (paper Figure 4: `k(a, b)`),
//! * an async `run` method — the kernel body itself.
//!
//! ```
//! use cgsim_runtime::compute_kernel;
//!
//! compute_kernel! {
//!     /// Sums two input streams (the paper's Figure 3 adder).
//!     #[realm(aie)]
//!     pub fn adder_kernel(
//!         in1: ReadPort<f32>,
//!         in2: ReadPort<f32>,
//!         out: WritePort<f32>,
//!     ) {
//!         loop {
//!             let (Some(a), Some(b)) = (in1.get().await, in2.get().await) else { break };
//!             out.put(a + b).await;
//!         }
//!     }
//! }
//!
//! use cgsim_core::KernelDecl;
//! assert_eq!(adder_kernel::NAME, "adder_kernel");
//! assert_eq!(adder_kernel::meta().ports.len(), 3);
//! ```
//!
//! Port settings are attached with `@`, mirroring the paper's non-type
//! template arguments on `KernelReadPort`/`KernelWritePort`:
//!
//! ```
//! use cgsim_runtime::compute_kernel;
//! use cgsim_core::PortSettings;
//!
//! compute_kernel! {
//!     #[realm(aie)]
//!     pub fn windowed(
//!         input: ReadPort<i16> @ PortSettings::new().window_bytes(256).ping_pong(),
//!         out: WritePort<i16>,
//!     ) {
//!         while let Some(w) = input.get_window(128).await {
//!             out.put_window(w).await;
//!         }
//!     }
//! }
//! ```

/// Define a compute kernel. See the [module documentation](self) for the
/// full grammar and examples.
#[macro_export]
macro_rules! compute_kernel {
    (
        $(#[doc = $doc:expr])*
        #[realm($realm:ident)]
        $vis:vis fn $name:ident (
            $( $pname:ident : $pkind:ident < $pty:ty > $(@ $pset:expr)? ),* $(,)?
        ) $body:block
    ) => {
        $(#[doc = $doc])*
        #[allow(non_camel_case_types)]
        #[derive(Clone, Copy, Debug, Default)]
        $vis struct $name;

        impl $name {
            /// The kernel coroutine body; one invocation simulates one
            /// kernel instance for the lifetime of the graph.
            #[allow(unused_mut)]
            $vis async fn run(
                $( mut $pname : $crate::compute_kernel!(@port_ty $pkind, $pty) ),*
            ) {
                $body
            }

            /// Invoke this kernel inside a graph-definition closure,
            /// binding its ports positionally to the given connectors.
            #[allow(dead_code)]
            $vis fn invoke(
                g: &mut $crate::cgsim_core::GraphBuilder,
                $( $pname : &$crate::cgsim_core::Connector<$pty> ),*
            ) -> ::std::result::Result<
                $crate::cgsim_core::KernelId,
                $crate::cgsim_core::GraphError,
            > {
                g.invoke::<Self>(&[ $( $pname.id() ),* ])
            }
        }

        impl $crate::cgsim_core::KernelDecl for $name {
            const NAME: &'static str = ::std::stringify!($name);
            const REALM: $crate::cgsim_core::Realm = $crate::compute_kernel!(@realm $realm);

            fn meta() -> $crate::cgsim_core::KernelMeta {
                $crate::cgsim_core::KernelMeta {
                    name: <Self as $crate::cgsim_core::KernelDecl>::NAME.into(),
                    realm: <Self as $crate::cgsim_core::KernelDecl>::REALM,
                    ports: ::std::vec![
                        $( $crate::compute_kernel!(
                            @sig $pkind,
                            ::std::stringify!($pname),
                            $pty,
                            $crate::compute_kernel!(@settings $($pset)?)
                        ) ),*
                    ],
                }
            }
        }

        impl $crate::KernelImpl for $name {
            fn spawn(
                binder: &mut $crate::PortBinder<'_>,
            ) -> ::std::result::Result<$crate::LocalBoxFuture, $crate::cgsim_core::GraphError> {
                $( let $pname = $crate::compute_kernel!(@bind $pkind, binder, $pty); )*
                ::std::result::Result::Ok(::std::boxed::Box::pin(Self::run($($pname),*)))
            }

            fn make_channel(
                port_idx: usize,
                capacity: usize,
            ) -> ::std::result::Result<$crate::AnyChannel, $crate::cgsim_core::GraphError> {
                <Self as $crate::KernelImpl>::make_channel_mode(
                    port_idx,
                    capacity,
                    $crate::ChannelMode::Shared,
                )
            }

            fn make_channel_mode(
                port_idx: usize,
                capacity: usize,
                mode: $crate::ChannelMode,
            ) -> ::std::result::Result<$crate::AnyChannel, $crate::cgsim_core::GraphError> {
                let constructors: &[fn(usize, $crate::ChannelMode) -> $crate::AnyChannel] = &[
                    $( |cap: usize, mode: $crate::ChannelMode| -> $crate::AnyChannel {
                        $crate::AnyChannel::typed($crate::Channel::<$pty>::with_mode(cap, mode))
                    } ),*
                ];
                match constructors.get(port_idx) {
                    ::std::option::Option::Some(f) => {
                        ::std::result::Result::Ok(f(capacity, mode))
                    }
                    ::std::option::Option::None => {
                        ::std::result::Result::Err($crate::cgsim_core::GraphError::ArityMismatch {
                            kernel: <Self as $crate::cgsim_core::KernelDecl>::NAME.into(),
                            expected: constructors.len(),
                            actual: port_idx + 1,
                        })
                    }
                }
            }
        }
    };

    // ---- helper arms -------------------------------------------------
    (@port_ty ReadPort, $t:ty) => { $crate::KernelReadPort<$t> };
    (@port_ty WritePort, $t:ty) => { $crate::KernelWritePort<$t> };

    (@sig ReadPort, $n:expr, $t:ty, $s:expr) => {
        $crate::cgsim_core::PortSig::read::<$t>($n, $s)
    };
    (@sig WritePort, $n:expr, $t:ty, $s:expr) => {
        $crate::cgsim_core::PortSig::write::<$t>($n, $s)
    };

    (@bind ReadPort, $b:ident, $t:ty) => { $b.read_port::<$t>()? };
    (@bind WritePort, $b:ident, $t:ty) => { $b.write_port::<$t>()? };

    (@settings) => { $crate::cgsim_core::PortSettings::DEFAULT };
    (@settings $s:expr) => { $s };

    (@realm aie) => { $crate::cgsim_core::Realm::Aie };
    (@realm noextract) => { $crate::cgsim_core::Realm::NoExtract };
    (@realm hls) => { $crate::cgsim_core::Realm::Hls };
}

/// Define a compute graph declaratively (§3.4, Figure 4).
///
/// This is the textual twin of the paper's `make_compute_graph_v` lambda:
/// `inputs` become global inputs, `let w = wire::<T>();` statements create
/// internal connectors, kernel-call statements bind kernels positionally,
/// and `outputs` lists the returned connectors. The *same* definition is
/// both executable (expands to [`cgsim_core::GraphBuilder`] calls, returning
/// `Result<FlatGraph, GraphError>`) and extractable (the `cgsim-extract`
/// interpreter evaluates the identical token stream, playing the role of
/// Clang's `constexpr` evaluator).
///
/// ```
/// use cgsim_runtime::{compute_kernel, compute_graph};
///
/// compute_kernel! {
///     #[realm(aie)]
///     pub fn scale_kernel(input: ReadPort<f32>, out: WritePort<f32>) {
///         while let Some(v) = input.get().await {
///             out.put(v * 3.0).await;
///         }
///     }
/// }
///
/// let graph = compute_graph! {
///     name: triple,
///     inputs: (a: f32),
///     body: {
///         let b = wire::<f32>();
///         scale_kernel(a, b);
///         attr(b, "plio_name", "out0");
///     },
///     outputs: (b),
/// }.unwrap();
/// assert_eq!(graph.name, "triple");
/// assert_eq!(graph.kernels.len(), 1);
/// ```
#[macro_export]
macro_rules! compute_graph {
    (
        name: $name:ident,
        inputs: ( $($iname:ident : $ity:ty),* $(,)? ),
        body: { $($body:tt)* },
        outputs: ( $($out:ident),* $(,)? ) $(,)?
    ) => {{
        $crate::cgsim_core::GraphBuilder::build(::std::stringify!($name), |g| {
            $( let $iname = g.input::<$ity>(::std::stringify!($iname)); )*
            $crate::compute_graph!(@body g, $($body)*);
            $( g.output(&$out); )*
            ::std::result::Result::Ok(())
        })
    }};

    // ---- body statement forms ----------------------------------------
    (@body $g:ident, ) => {};
    (@body $g:ident, let $w:ident = wire::<$t:ty>(); $($rest:tt)*) => {
        let $w = $g.wire::<$t>();
        $crate::compute_graph!(@body $g, $($rest)*);
    };
    (@body $g:ident, attr($c:ident, $k:literal, $v:literal); $($rest:tt)*) => {
        $g.attr(&$c, $k, $v);
        $crate::compute_graph!(@body $g, $($rest)*);
    };
    (@body $g:ident, settings($c:ident, $s:expr); $($rest:tt)*) => {
        $g.connector_settings(&$c, $s);
        $crate::compute_graph!(@body $g, $($rest)*);
    };
    (@body $g:ident, $kernel:ident ( $($arg:ident),* $(,)? ); $($rest:tt)*) => {
        $kernel::invoke($g, $( &$arg ),* )?;
        $crate::compute_graph!(@body $g, $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use cgsim_core::{KernelDecl, PortDir, PortKind, PortSettings, Realm};

    compute_kernel! {
        /// Doc comment survives into the generated type.
        #[realm(noextract)]
        pub fn host_logger(input: ReadPort<u32>, out: WritePort<u32>) {
            while let Some(v) = input.get().await {
                out.put(v).await;
            }
        }
    }

    compute_kernel! {
        #[realm(aie)]
        fn settings_kernel(
            input: ReadPort<i16> @ PortSettings::new().beat_bytes(16),
            param: ReadPort<f32> @ PortSettings::new().runtime_param(),
            out: WritePort<i16> @ PortSettings::new().window_bytes(512),
        ) {
            let _scale = param.get().await;
            while let Some(v) = input.get().await {
                out.put(v).await;
            }
        }
    }

    #[test]
    fn metadata_reflects_declaration() {
        assert_eq!(host_logger::NAME, "host_logger");
        assert_eq!(host_logger::REALM, Realm::NoExtract);
        let m = host_logger::meta();
        assert_eq!(m.ports.len(), 2);
        assert_eq!(m.ports[0].name, "input");
        assert_eq!(m.ports[0].dir, PortDir::In);
        assert_eq!(m.ports[1].dir, PortDir::Out);
        assert_eq!(m.ports[0].dtype.name, "u32");
    }

    #[test]
    fn port_settings_annotations_collected() {
        let m = settings_kernel::meta();
        assert_eq!(m.ports[0].settings.beat_bytes, 16);
        assert_eq!(m.ports[1].kind(), PortKind::RuntimeParam);
        assert_eq!(m.ports[2].kind(), PortKind::Window);
        assert_eq!(m.ports[2].settings.window_bytes, 512);
    }

    compute_kernel! {
        #[realm(aie)]
        fn cg_pass(input: ReadPort<u32>, out: WritePort<u32>) {
            while let Some(v) = input.get().await {
                out.put(v).await;
            }
        }
    }

    #[test]
    fn compute_graph_macro_builds_fig4() {
        let graph = compute_graph! {
            name: fig4,
            inputs: (a: u32),
            body: {
                let b = wire::<u32>();
                let c = wire::<u32>();
                cg_pass(a, b);
                cg_pass(b, c);
                attr(c, "plio_name", "out0");
                settings(b, PortSettings::new().depth(4));
            },
            outputs: (c),
        }
        .unwrap();
        assert_eq!(graph.kernels.len(), 2);
        assert_eq!(graph.connectors.len(), 3);
        assert_eq!(graph.connectors[1].settings.depth, 4);
        assert_eq!(graph.connectors[2].attrs.get_str("plio_name"), Some("out0"));
    }

    #[test]
    fn compute_graph_macro_supports_broadcast_and_merge() {
        let graph = compute_graph! {
            name: diamond,
            inputs: (a: u32),
            body: {
                let m = wire::<u32>();
                cg_pass(a, m);
                cg_pass(a, m);
            },
            outputs: (m),
        }
        .unwrap();
        let stats = graph.stats();
        assert_eq!(stats.broadcasts, 1); // `a` feeds two kernels
        assert_eq!(stats.merges, 1); // both write `m`
    }

    #[test]
    fn make_channel_is_positional_and_typed() {
        use crate::KernelImpl;
        let c0 = settings_kernel::make_channel(0, 4).unwrap();
        assert!(c0.downcast::<crate::Channel<i16>>().is_ok());
        let c1 = settings_kernel::make_channel(1, 4).unwrap();
        assert!(c1.downcast::<crate::Channel<f32>>().is_ok());
        assert!(settings_kernel::make_channel(3, 4).is_err());
    }

    #[test]
    fn make_channel_mode_selects_storage_policy() {
        use crate::{ChannelMode, KernelImpl};
        let fast = settings_kernel::make_channel_mode(0, 4, ChannelMode::SingleThread).unwrap();
        let chan = fast.downcast::<crate::Channel<i16>>().unwrap();
        assert_eq!(chan.mode(), ChannelMode::SingleThread);
        // The mode-less entry point stays on the thread-safe path.
        let shared = settings_kernel::make_channel(0, 4).unwrap();
        let chan = shared.downcast::<crate::Channel<i16>>().unwrap();
        assert_eq!(chan.mode(), ChannelMode::Shared);
    }
}

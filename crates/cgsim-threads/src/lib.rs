//! # cgsim-threads — thread-per-kernel functional simulator
//!
//! Stand-in for AMD's functional simulator **x86sim**, which the paper uses
//! as the wall-clock comparison point in Table 2: "x86sim assigns each
//! kernel to a dedicated OS thread, whereas cgsim employs cooperative
//! multitasking to execute all kernels on a single shared thread" (§5.2).
//!
//! This crate runs *exactly the same* kernel definitions and broadcast
//! channels as `cgsim-runtime`, but drives every kernel coroutine with a
//! blocking `block_on` loop on its own OS thread: channel wakers unpark the
//! owning thread instead of re-queueing a task. The contrast between the two
//! execution models — preemptive parallelism with per-transfer
//! synchronisation cost vs cooperative single-core execution — is precisely
//! the effect Table 2 measures.
//!
//! The API mirrors [`cgsim_runtime::RuntimeContext`]:
//!
//! ```
//! use cgsim_runtime::{compute_kernel, KernelLibrary};
//! use cgsim_threads::{ThreadedConfig, ThreadedContext};
//! use cgsim_core::GraphBuilder;
//!
//! compute_kernel! {
//!     #[realm(aie)]
//!     pub fn double_kernel(input: ReadPort<i32>, out: WritePort<i32>) {
//!         while let Some(v) = input.get().await {
//!             out.put(v * 2).await;
//!         }
//!     }
//! }
//!
//! let graph = GraphBuilder::build("double", |g| {
//!     let a = g.input::<i32>("a");
//!     let b = g.wire::<i32>();
//!     double_kernel::invoke(g, &a, &b)?;
//!     g.output(&b);
//!     Ok(())
//! }).unwrap();
//! let lib = KernelLibrary::with(|l| { l.register::<double_kernel>(); });
//!
//! let mut ctx = ThreadedContext::new(&graph, &lib, ThreadedConfig::default()).unwrap();
//! ctx.feed(0, vec![1, 2, 3]).unwrap();
//! let out = ctx.collect::<i32>(0).unwrap();
//! let report = ctx.run().unwrap();
//! assert_eq!(report.threads, 3); // kernel + source + sink
//! assert_eq!(out.take(), vec![2, 4, 6]);
//! ```

#![warn(missing_docs)]

use cgsim_core::{ConnectorId, FlatGraph, GraphError, StreamData};
use cgsim_runtime::{
    block_on, AnyChannel, Channel, ChannelStats, KernelLibrary, PortBinder, SinkHandle,
};
use parking_lot::Mutex;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Tunables for a threaded simulation run.
#[derive(Clone, Copy, Debug)]
pub struct ThreadedConfig {
    /// Channel capacity for connectors without an explicit `depth` setting.
    pub default_depth: usize,
}

impl Default for ThreadedConfig {
    fn default() -> Self {
        ThreadedConfig { default_depth: 64 }
    }
}

/// Result of one threaded graph execution.
#[derive(Clone, Debug)]
pub struct ThreadReport {
    /// OS threads used (kernels + sources + sinks).
    pub threads: usize,
    /// Wall-clock time of the parallel phase.
    pub wall_time: Duration,
    /// Sum of busy time across all threads (can exceed `wall_time` when the
    /// run actually exploited parallelism — the paper's farrow observation
    /// that x86sim "utilizes two CPU cores fully").
    pub cpu_time: Duration,
    /// Per-connector channel counters `(name, stats)`, in connector order —
    /// the same shape as `cgsim_runtime::RunReport::channels`, so the
    /// conformance harness applies one conservation check to both backends.
    pub channels: Vec<(String, ChannelStats)>,
}

type WorkItem = Box<dyn FnOnce(&Barrier) -> Duration + Send>;

/// A single threaded execution instance of a compute graph.
///
/// Construction registers one work item per kernel; [`Self::feed`] /
/// [`Self::collect`] add source and sink threads; [`Self::run`] spawns
/// everything behind a start barrier (so every channel endpoint registers
/// before any data flows) and joins.
pub struct ThreadedContext<'g> {
    graph: &'g FlatGraph,
    channels: Vec<AnyChannel>,
    work: Vec<WorkItem>,
    fed_inputs: Vec<bool>,
    bound_outputs: Vec<bool>,
    spawn_errors: Arc<Mutex<Vec<GraphError>>>,
}

impl<'g> ThreadedContext<'g> {
    /// Reconstruct a runnable copy of `graph`, one OS thread per kernel.
    pub fn new(
        graph: &'g FlatGraph,
        library: &'g KernelLibrary,
        config: ThreadedConfig,
    ) -> Result<Self, GraphError> {
        graph.validate()?;

        let mut channels: Vec<AnyChannel> = Vec::with_capacity(graph.connectors.len());
        for (ci, conn) in graph.connectors.iter().enumerate() {
            let capacity = if conn.settings.depth != 0 {
                conn.settings.depth as usize
            } else {
                config.default_depth
            };
            let endpoint = graph.kernels.iter().enumerate().find_map(|(ki, k)| {
                k.ports
                    .iter()
                    .position(|p| p.connector.index() == ci)
                    .map(|pi| (ki, pi))
            });
            match endpoint {
                Some((ki, pi)) => {
                    let entry = library.get(&graph.kernels[ki].kind)?;
                    // `make_channel` builds mutex-guarded (`Shared`) channels
                    // — mandatory here: endpoints live on kernel threads, so
                    // the cooperative runtime's single-thread fast path
                    // (`ChannelMode::SingleThread`) must never be used.
                    channels.push(entry.make_channel(pi, capacity)?);
                }
                None => channels.push(AnyChannel::placeholder()),
            }
        }

        let spawn_errors = Arc::new(Mutex::new(Vec::new()));
        let mut ctx = ThreadedContext {
            graph,
            channels,
            work: Vec::new(),
            fed_inputs: vec![false; graph.inputs.len()],
            bound_outputs: vec![false; graph.outputs.len()],
            spawn_errors,
        };

        for k in &graph.kernels {
            let entry = Arc::clone(library.get(&k.kind)?);
            let kernel_channels: Vec<AnyChannel> = k
                .ports
                .iter()
                .map(|p| ctx.channels[p.connector.index()].clone())
                .collect();
            let instance = k.instance.clone();
            let errors = Arc::clone(&ctx.spawn_errors);
            ctx.work.push(Box::new(move |barrier: &Barrier| {
                // Phase 1: bind ports (registers all channel endpoints).
                let mut binder = PortBinder::new(&instance, &kernel_channels);
                let fut = entry.spawn(&mut binder);
                // Everyone must reach the barrier, errors included, or the
                // rest of the fleet deadlocks.
                barrier.wait();
                match fut {
                    Ok(fut) => {
                        let start = Instant::now();
                        block_on(fut);
                        start.elapsed()
                    }
                    Err(e) => {
                        errors.lock().push(e);
                        Duration::ZERO
                    }
                }
            }));
        }
        Ok(ctx)
    }

    fn typed_channel<T: StreamData>(
        &mut self,
        connector: ConnectorId,
    ) -> Result<Arc<Channel<T>>, GraphError> {
        let slot = &mut self.channels[connector.index()];
        if let Ok(chan) = slot.clone().downcast::<Channel<T>>() {
            return Ok(chan);
        }
        if slot.clone().downcast::<()>().is_ok() {
            let chan = Channel::<T>::new(64);
            *slot = AnyChannel::typed(chan.clone());
            return Ok(chan);
        }
        Err(GraphError::IoTypeMismatch {
            connector,
            expected: Box::new(self.graph.connectors[connector.index()].dtype.clone()),
        })
    }

    /// Attach a data-source thread feeding positional global input `index`.
    pub fn feed<T: StreamData>(
        &mut self,
        index: usize,
        data: impl IntoIterator<Item = T> + Send + 'static,
    ) -> Result<(), GraphError> {
        let Some(&connector) = self.graph.inputs.get(index) else {
            return Err(GraphError::IoArityMismatch {
                what: "inputs",
                expected: self.graph.inputs.len(),
                actual: index + 1,
            });
        };
        let chan = self.typed_channel::<T>(connector)?;
        self.fed_inputs[index] = true;
        self.work.push(Box::new(move |barrier: &Barrier| {
            let mut tx = chan.add_producer();
            barrier.wait();
            let start = Instant::now();
            block_on(async move {
                for v in data {
                    tx.send(v).await;
                }
            });
            start.elapsed()
        }));
        Ok(())
    }

    /// Attach a data-sink thread collecting positional global output
    /// `index`. Results become available after [`Self::run`].
    pub fn collect<T: StreamData>(&mut self, index: usize) -> Result<SinkHandle<T>, GraphError> {
        let Some(&connector) = self.graph.outputs.get(index) else {
            return Err(GraphError::IoArityMismatch {
                what: "outputs",
                expected: self.graph.outputs.len(),
                actual: index + 1,
            });
        };
        let chan = self.typed_channel::<T>(connector)?;
        self.bound_outputs[index] = true;
        let handle = SinkHandle::new();
        let data = handle.shared();
        self.work.push(Box::new(move |barrier: &Barrier| {
            let mut rx = chan.add_consumer();
            barrier.wait();
            let start = Instant::now();
            block_on(async move {
                while let Some(v) = rx.recv().await {
                    data.lock().unwrap().push(v);
                }
            });
            start.elapsed()
        }));
        Ok(handle)
    }

    /// Spawn all threads behind a common start barrier, run the graph, and
    /// join. Mirrors x86sim's execution model.
    pub fn run(self) -> Result<ThreadReport, GraphError> {
        if let Some(missing) = self.fed_inputs.iter().position(|f| !f) {
            return Err(GraphError::IoArityMismatch {
                what: "inputs",
                expected: self.graph.inputs.len(),
                actual: missing,
            });
        }
        if let Some(missing) = self.bound_outputs.iter().position(|f| !f) {
            return Err(GraphError::IoArityMismatch {
                what: "outputs",
                expected: self.graph.outputs.len(),
                actual: missing,
            });
        }

        let threads = self.work.len();
        let barrier = Arc::new(Barrier::new(threads));
        let start = Instant::now();
        let handles: Vec<_> = self
            .work
            .into_iter()
            .enumerate()
            .map(|(i, item)| {
                let barrier = Arc::clone(&barrier);
                std::thread::Builder::new()
                    .name(format!("cgsim-thread-{i}"))
                    .spawn(move || item(&barrier))
                    .expect("spawn simulation thread")
            })
            .collect();
        let mut cpu_time = Duration::ZERO;
        for h in handles {
            cpu_time += h.join().expect("simulation thread panicked");
        }
        let wall_time = start.elapsed();

        let errors = std::mem::take(&mut *self.spawn_errors.lock());
        if let Some(e) = errors.into_iter().next() {
            return Err(e);
        }
        let channels = self
            .channels
            .iter()
            .enumerate()
            .filter_map(|(ci, c)| {
                c.admin().map(|a| {
                    let name = self.graph.connectors[ci]
                        .attrs
                        .get_str("name")
                        .map(str::to_owned)
                        .unwrap_or_else(|| format!("c{ci}"));
                    (name, a.stats())
                })
            })
            .collect();
        Ok(ThreadReport {
            threads,
            wall_time,
            cpu_time,
            channels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgsim_core::GraphBuilder;
    use cgsim_runtime::compute_kernel;

    compute_kernel! {
        #[realm(aie)]
        pub fn inc_kernel(input: ReadPort<i64>, out: WritePort<i64>) {
            while let Some(v) = input.get().await {
                out.put(v + 1).await;
            }
        }
    }

    compute_kernel! {
        #[realm(aie)]
        pub fn sum2_kernel(a: ReadPort<i64>, b: ReadPort<i64>, out: WritePort<i64>) {
            loop {
                let (Some(x), Some(y)) = (a.get().await, b.get().await) else { break };
                out.put(x + y).await;
            }
        }
    }

    fn library() -> KernelLibrary {
        KernelLibrary::with(|l| {
            l.register::<inc_kernel>();
            l.register::<sum2_kernel>();
        })
    }

    #[test]
    fn single_kernel_pipeline() {
        let graph = GraphBuilder::build("inc", |g| {
            let a = g.input::<i64>("a");
            let b = g.wire::<i64>();
            inc_kernel::invoke(g, &a, &b)?;
            g.output(&b);
            Ok(())
        })
        .unwrap();
        let lib = library();
        let mut ctx = ThreadedContext::new(&graph, &lib, ThreadedConfig::default()).unwrap();
        ctx.feed(0, vec![10i64, 20, 30]).unwrap();
        let out = ctx.collect::<i64>(0).unwrap();
        let report = ctx.run().unwrap();
        assert_eq!(report.threads, 3);
        assert_eq!(out.take(), vec![11, 21, 31]);
        // Channel counters survive the parallel run: both connectors moved
        // 3 elements each way.
        assert_eq!(report.channels.len(), 2);
        for (name, stats) in &report.channels {
            assert_eq!(stats.pushes, 3, "channel {name}");
            assert_eq!(stats.pops, 3, "channel {name}");
        }
    }

    #[test]
    fn deep_pipeline_with_many_threads() {
        const DEPTH: usize = 8;
        let graph = GraphBuilder::build("deep", |g| {
            let mut prev = g.input::<i64>("a");
            for _ in 0..DEPTH {
                let next = g.wire::<i64>();
                inc_kernel::invoke(g, &prev, &next)?;
                prev = next;
            }
            g.output(&prev);
            Ok(())
        })
        .unwrap();
        let lib = library();
        let mut ctx = ThreadedContext::new(&graph, &lib, ThreadedConfig::default()).unwrap();
        ctx.feed(0, (0..1000i64).collect::<Vec<_>>()).unwrap();
        let out = ctx.collect::<i64>(0).unwrap();
        let report = ctx.run().unwrap();
        assert_eq!(report.threads, DEPTH + 2);
        let got = out.take();
        assert_eq!(got.len(), 1000);
        assert!(got
            .iter()
            .enumerate()
            .all(|(i, v)| *v == i as i64 + DEPTH as i64));
    }

    #[test]
    fn diamond_broadcast_and_merge() {
        // a → [inc, inc] → merged wire → output. The merge interleaves
        // nondeterministically across threads; only the multiset is fixed.
        let graph = GraphBuilder::build("diamond", |g| {
            let a = g.input::<i64>("a");
            let m = g.wire::<i64>();
            inc_kernel::invoke(g, &a, &m)?;
            inc_kernel::invoke(g, &a, &m)?;
            g.output(&m);
            Ok(())
        })
        .unwrap();
        let lib = library();
        let mut ctx = ThreadedContext::new(&graph, &lib, ThreadedConfig::default()).unwrap();
        ctx.feed(0, vec![1i64, 2, 3]).unwrap();
        let out = ctx.collect::<i64>(0).unwrap();
        ctx.run().unwrap();
        let mut got = out.take();
        got.sort_unstable();
        assert_eq!(got, vec![2, 2, 3, 3, 4, 4]);
    }

    #[test]
    fn two_input_kernel_across_threads() {
        let graph = GraphBuilder::build("sum", |g| {
            let a = g.input::<i64>("a");
            let b = g.input::<i64>("b");
            let s = g.wire::<i64>();
            sum2_kernel::invoke(g, &a, &b, &s)?;
            g.output(&s);
            Ok(())
        })
        .unwrap();
        let lib = library();
        let mut ctx = ThreadedContext::new(&graph, &lib, ThreadedConfig::default()).unwrap();
        ctx.feed(0, vec![1i64, 2, 3]).unwrap();
        ctx.feed(1, vec![10i64, 20, 30]).unwrap();
        let out = ctx.collect::<i64>(0).unwrap();
        ctx.run().unwrap();
        assert_eq!(out.take(), vec![11, 22, 33]);
    }

    #[test]
    fn missing_io_is_rejected() {
        let graph = GraphBuilder::build("inc", |g| {
            let a = g.input::<i64>("a");
            let b = g.wire::<i64>();
            inc_kernel::invoke(g, &a, &b)?;
            g.output(&b);
            Ok(())
        })
        .unwrap();
        let lib = library();
        let ctx = ThreadedContext::new(&graph, &lib, ThreadedConfig::default()).unwrap();
        assert!(matches!(ctx.run(), Err(GraphError::IoArityMismatch { .. })));
    }

    #[test]
    fn results_match_cooperative_runtime() {
        use cgsim_runtime::{RuntimeConfig, RuntimeContext};
        let build = || {
            GraphBuilder::build("pipe", |g| {
                let a = g.input::<i64>("a");
                let b = g.wire::<i64>();
                let c = g.wire::<i64>();
                inc_kernel::invoke(g, &a, &b)?;
                inc_kernel::invoke(g, &b, &c)?;
                g.output(&c);
                Ok(())
            })
            .unwrap()
        };
        let lib = library();
        let input: Vec<i64> = (0..500).collect();

        let graph = build();
        let mut coop = RuntimeContext::new(&graph, &lib, RuntimeConfig::default()).unwrap();
        coop.feed(0, input.clone()).unwrap();
        let coop_out = coop.collect::<i64>(0).unwrap();
        coop.run().unwrap();

        let graph = build();
        let mut thr = ThreadedContext::new(&graph, &lib, ThreadedConfig::default()).unwrap();
        thr.feed(0, input).unwrap();
        let thr_out = thr.collect::<i64>(0).unwrap();
        thr.run().unwrap();

        assert_eq!(coop_out.take(), thr_out.take());
    }
}

//! Common harness interface over the four evaluation applications (§5).
//!
//! Each ported AMD example implements [`EvalApp`], exposing everything the
//! benchmark harnesses need: the graph, the kernel library, measured cost
//! profiles, workload specs matching the paper's block sizes, and
//! self-verifying functional runs on both the cooperative runtime (cgsim)
//! and the thread-per-kernel runtime (x86sim substitute).

use aie_sim::{KernelCostProfile, WorkloadSpec};
use cgsim_compiled::CompiledPlan;
use cgsim_core::FlatGraph;
use cgsim_runtime::cgsim_trace::Tracer;
use cgsim_runtime::{KernelLibrary, RunReport, RunSpec};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Per-launch resources that accompany a [`RunSpec`] without being part of
/// the (serializable) spec itself: a precompiled static schedule to reuse
/// and a tracer to record events into.
///
/// The serving layer (`cgsim-serve`) is the motivating caller: its
/// compiled-graph cache hands every request the same [`CompiledPlan`] so
/// only instantiation happens per request, and its per-request [`Tracer`]
/// collects the Chrome-trace the client asked for. Harnesses that need
/// neither just launch through [`EvalApp::run_spec`].
#[derive(Clone, Default)]
pub struct Launch {
    /// Precompiled static schedule for `Backend::Compiled` runs; when set,
    /// the dispatcher instantiates it directly instead of recompiling the
    /// graph. Ignored by the other backends.
    pub plan: Option<CompiledPlan>,
    /// Tracer events are recorded into (disabled by default).
    pub tracer: Tracer,
}

impl Launch {
    /// Attach a precompiled plan.
    pub fn with_plan(mut self, plan: CompiledPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Attach a tracer.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }
}

/// Outcome of one functional simulation run.
#[derive(Clone, Debug)]
pub struct AppRun {
    /// Wall-clock duration of graph execution.
    pub wall_time: Duration,
    /// Output elements produced.
    pub out_elems: usize,
    /// FNV-1a checksum over the output bytes (for cross-runtime equality
    /// checks without holding the data).
    pub checksum: u64,
    /// Fraction of time spent in kernels (cooperative runs only; the §5.2
    /// profiling claim).
    pub kernel_fraction: Option<f64>,
    /// The full runtime report (cooperative and compiled runs; `None` for
    /// threaded runs, which have no scheduler). `Arc`-wrapped so cloning an
    /// `AppRun` stays cheap.
    pub report: Option<Arc<RunReport>>,
}

/// One ported evaluation application.
///
/// `Send + Sync` so boxed apps can be moved into `cgsim-pool` batch jobs
/// and shared across bench worker threads (every implementation is a unit
/// struct, so the bound is free).
pub trait EvalApp: Send + Sync {
    /// Short name matching the paper's Table 1 ("bitonic", "farrow", "IIR",
    /// "bilinear").
    fn name(&self) -> &'static str;

    /// Input block size in bytes, as reported in Table 1.
    fn block_bytes(&self) -> u64;

    /// Build the compute graph.
    fn graph(&self) -> FlatGraph;

    /// Kernel registry for runtime instantiation.
    fn library(&self) -> KernelLibrary;

    /// Measured cost profiles (instrumented intrinsic op counts).
    fn profiles(&self) -> HashMap<String, KernelCostProfile>;

    /// Workload spec for `blocks` input blocks (for the cycle simulator).
    fn workload(&self, blocks: u64) -> WorkloadSpec;

    /// Run `blocks` blocks under `spec` with per-launch resources (cached
    /// compiled plan, tracer) and verify the output against the scalar
    /// reference; returns run metrics. This is the full entry point the
    /// serving layer launches through.
    fn run_launched(&self, spec: &RunSpec, blocks: u64, launch: Launch) -> Result<AppRun, String>;

    /// Run `blocks` blocks under `spec` and verify the output against the
    /// scalar reference; returns run metrics. This is the [`RunSpec`]-native
    /// entry point every harness (bench, conformance, pool) launches
    /// through.
    fn run_spec(&self, spec: &RunSpec, blocks: u64) -> Result<AppRun, String> {
        self.run_launched(spec, blocks, Launch::default())
    }
}

/// FNV-1a over a byte stream.
pub fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Checksum helper for `f32` outputs (bit-exact).
pub fn checksum_f32(data: &[f32]) -> u64 {
    fnv1a(data.iter().flat_map(|v| v.to_le_bytes()))
}

/// Checksum helper for `i16` outputs.
pub fn checksum_i16(data: &[i16]) -> u64 {
    fnv1a(data.iter().flat_map(|v| v.to_le_bytes()))
}

/// All four evaluation applications, in the paper's Table 1 order.
pub fn all_apps() -> Vec<Box<dyn EvalApp>> {
    vec![
        Box::new(crate::bitonic::BitonicApp),
        Box::new(crate::farrow::FarrowApp),
        Box::new(crate::iir::IirApp),
        Box::new(crate::bilinear::BilinearApp),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgsim_runtime::Backend;

    #[test]
    fn fnv1a_known_vector() {
        // FNV-1a of empty input is the offset basis.
        assert_eq!(fnv1a([]), 0xcbf2_9ce4_8422_2325);
        // And it changes with content.
        assert_ne!(fnv1a([1u8]), fnv1a([2u8]));
    }

    #[test]
    fn checksums_are_order_sensitive() {
        assert_ne!(checksum_f32(&[1.0, 2.0]), checksum_f32(&[2.0, 1.0]));
        assert_ne!(checksum_i16(&[1, 2]), checksum_i16(&[2, 1]));
    }

    #[test]
    fn all_apps_listed_in_table1_order() {
        let apps = all_apps();
        let names: Vec<_> = apps.iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["bitonic", "farrow", "IIR", "bilinear"]);
    }

    #[test]
    fn compiled_backend_matches_cooperative_on_every_app() {
        // The compiled static-schedule engine must be bit-identical to the
        // cooperative reference on all four paper graphs (checksums are
        // order-sensitive, so matching checksums mean matching streams).
        for app in all_apps() {
            // All four paper graphs are statically schedulable: the
            // compiled run below must exercise the real compiled engine,
            // not the cooperative fallback.
            let graph = app.graph();
            let lib = app.library();
            cgsim_compiled::CompiledContext::new(
                &graph,
                &lib,
                *RunSpec::for_graph(app.name()).config(),
            )
            .unwrap_or_else(|e| panic!("{} must compile: {e}", app.name()));
            let coop = app
                .run_spec(&RunSpec::for_graph(app.name()), 2)
                .unwrap_or_else(|e| panic!("{} cooperative: {e}", app.name()));
            let compiled = app
                .run_spec(
                    &RunSpec::for_graph(app.name()).backend(Backend::Compiled),
                    2,
                )
                .unwrap_or_else(|e| panic!("{} compiled: {e}", app.name()));
            assert_eq!(
                compiled.checksum,
                coop.checksum,
                "{} diverged under the compiled backend",
                app.name()
            );
            assert_eq!(compiled.out_elems, coop.out_elems, "{}", app.name());
        }
    }
}

//! Common harness interface over the four evaluation applications (§5).
//!
//! Each ported AMD example implements [`EvalApp`], exposing everything the
//! benchmark harnesses need: the graph, the kernel library, measured cost
//! profiles, workload specs matching the paper's block sizes, and
//! self-verifying functional runs on both the cooperative runtime (cgsim)
//! and the thread-per-kernel runtime (x86sim substitute).

use aie_sim::{KernelCostProfile, WorkloadSpec};
use cgsim_core::FlatGraph;
use cgsim_runtime::{KernelLibrary, Profiling};
use std::collections::HashMap;
use std::time::Duration;

/// Which functional runtime executed a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Runtime {
    /// Cooperative single-threaded simulator (`cgsim`) in its default
    /// configuration: single-thread fast-path channels and sampled
    /// profiling.
    Cooperative,
    /// Cooperative simulator with a seeded ready-list permutation — same
    /// semantics, different (but replayable) task interleaving. Used by the
    /// conformance tests to show results are schedule-independent.
    CooperativeSeeded(u64),
    /// Cooperative simulator in its pre-optimisation configuration:
    /// mutex-guarded (`Shared`) channels and full per-poll timing. The
    /// bench harness uses this as the baseline leg of before/after
    /// comparisons.
    CooperativeBaseline,
    /// Cooperative simulator with an explicit [`Profiling`] mode on the
    /// default fast-path channels. `Profiling::Full` reproduces the §5.2
    /// kernel-fraction methodology exactly (every poll timed).
    CooperativeProfiled(Profiling),
    /// Thread-per-kernel simulator (`x86sim` substitute).
    Threaded,
}

/// Outcome of one functional simulation run.
#[derive(Clone, Debug)]
pub struct AppRun {
    /// Wall-clock duration of graph execution.
    pub wall_time: Duration,
    /// Output elements produced.
    pub out_elems: usize,
    /// FNV-1a checksum over the output bytes (for cross-runtime equality
    /// checks without holding the data).
    pub checksum: u64,
    /// Fraction of time spent in kernels (cooperative runs only; the §5.2
    /// profiling claim).
    pub kernel_fraction: Option<f64>,
}

/// One ported evaluation application.
pub trait EvalApp {
    /// Short name matching the paper's Table 1 ("bitonic", "farrow", "IIR",
    /// "bilinear").
    fn name(&self) -> &'static str;

    /// Input block size in bytes, as reported in Table 1.
    fn block_bytes(&self) -> u64;

    /// Build the compute graph.
    fn graph(&self) -> FlatGraph;

    /// Kernel registry for runtime instantiation.
    fn library(&self) -> KernelLibrary;

    /// Measured cost profiles (instrumented intrinsic op counts).
    fn profiles(&self) -> HashMap<String, KernelCostProfile>;

    /// Workload spec for `blocks` input blocks (for the cycle simulator).
    fn workload(&self, blocks: u64) -> WorkloadSpec;

    /// Run `blocks` blocks on the given functional runtime and verify the
    /// output against the scalar reference; returns run metrics.
    fn run_functional(&self, runtime: Runtime, blocks: u64) -> Result<AppRun, String>;
}

/// FNV-1a over a byte stream.
pub fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Checksum helper for `f32` outputs (bit-exact).
pub fn checksum_f32(data: &[f32]) -> u64 {
    fnv1a(data.iter().flat_map(|v| v.to_le_bytes()))
}

/// Checksum helper for `i16` outputs.
pub fn checksum_i16(data: &[i16]) -> u64 {
    fnv1a(data.iter().flat_map(|v| v.to_le_bytes()))
}

/// All four evaluation applications, in the paper's Table 1 order.
pub fn all_apps() -> Vec<Box<dyn EvalApp>> {
    vec![
        Box::new(crate::bitonic::BitonicApp),
        Box::new(crate::farrow::FarrowApp),
        Box::new(crate::iir::IirApp),
        Box::new(crate::bilinear::BilinearApp),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_known_vector() {
        // FNV-1a of empty input is the offset basis.
        assert_eq!(fnv1a([]), 0xcbf2_9ce4_8422_2325);
        // And it changes with content.
        assert_ne!(fnv1a([1u8]), fnv1a([2u8]));
    }

    #[test]
    fn checksums_are_order_sensitive() {
        assert_ne!(checksum_f32(&[1.0, 2.0]), checksum_f32(&[2.0, 1.0]));
        assert_ne!(checksum_i16(&[1, 2]), checksum_i16(&[2, 1]));
    }

    #[test]
    fn all_apps_listed_in_table1_order() {
        let apps = all_apps();
        let names: Vec<_> = apps.iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["bitonic", "farrow", "IIR", "bilinear"]);
    }
}

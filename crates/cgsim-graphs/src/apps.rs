//! Common harness interface over the four evaluation applications (§5).
//!
//! Each ported AMD example implements [`EvalApp`], exposing everything the
//! benchmark harnesses need: the graph, the kernel library, measured cost
//! profiles, workload specs matching the paper's block sizes, and
//! self-verifying functional runs on both the cooperative runtime (cgsim)
//! and the thread-per-kernel runtime (x86sim substitute).

use aie_sim::{KernelCostProfile, WorkloadSpec};
use cgsim_core::FlatGraph;
use cgsim_runtime::{Backend, ChannelMode, KernelLibrary, Profiling, RunSpec, Schedule};
use std::collections::HashMap;
use std::time::Duration;

/// Which functional runtime executed a run.
///
/// Superseded by [`RunSpec`]: the ad-hoc configuration variants below were
/// one-off points in the schedule × channel-mode × profiling matrix, and
/// every new axis forced another variant. `Runtime` now survives only as a
/// thin conversion shim — `RunSpec::from(runtime)` — so existing call sites
/// keep compiling; the plain backend selectors (`Cooperative`, `Threaded`)
/// remain undeprecated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Runtime {
    /// Cooperative single-threaded simulator (`cgsim`) in its default
    /// configuration: single-thread fast-path channels and sampled
    /// profiling.
    Cooperative,
    /// Cooperative simulator with a seeded ready-list permutation.
    #[deprecated(
        since = "0.2.0",
        note = "use RunSpec::for_graph(..).schedule(Schedule::Seeded(seed)) instead"
    )]
    CooperativeSeeded(u64),
    /// Cooperative simulator in its pre-optimisation configuration:
    /// mutex-guarded (`Shared`) channels and full per-poll timing.
    #[deprecated(
        since = "0.2.0",
        note = "use RunSpec::for_graph(..).channels(ChannelMode::Shared).profiling(Profiling::Full) instead"
    )]
    CooperativeBaseline,
    /// Cooperative simulator with an explicit [`Profiling`] mode on the
    /// default fast-path channels.
    #[deprecated(
        since = "0.2.0",
        note = "use RunSpec::for_graph(..).profiling(..) instead"
    )]
    CooperativeProfiled(Profiling),
    /// Thread-per-kernel simulator (`x86sim` substitute).
    Threaded,
}

impl From<Runtime> for RunSpec {
    /// Lower a legacy `Runtime` selector to the equivalent [`RunSpec`] —
    /// the deprecation shim that keeps pre-`RunSpec` call sites compiling
    /// with identical behaviour.
    #[allow(deprecated)]
    fn from(runtime: Runtime) -> RunSpec {
        match runtime {
            Runtime::Cooperative => RunSpec::for_graph("cooperative"),
            Runtime::CooperativeSeeded(seed) => {
                RunSpec::for_graph("cooperative-seeded").schedule(Schedule::Seeded(seed))
            }
            Runtime::CooperativeBaseline => RunSpec::for_graph("cooperative-baseline")
                .channels(ChannelMode::Shared)
                .profiling(Profiling::Full),
            Runtime::CooperativeProfiled(profiling) => {
                RunSpec::for_graph("cooperative-profiled").profiling(profiling)
            }
            Runtime::Threaded => RunSpec::for_graph("threaded").backend(Backend::Threaded),
        }
    }
}

/// Outcome of one functional simulation run.
#[derive(Clone, Debug)]
pub struct AppRun {
    /// Wall-clock duration of graph execution.
    pub wall_time: Duration,
    /// Output elements produced.
    pub out_elems: usize,
    /// FNV-1a checksum over the output bytes (for cross-runtime equality
    /// checks without holding the data).
    pub checksum: u64,
    /// Fraction of time spent in kernels (cooperative runs only; the §5.2
    /// profiling claim).
    pub kernel_fraction: Option<f64>,
}

/// One ported evaluation application.
///
/// `Send + Sync` so boxed apps can be moved into `cgsim-pool` batch jobs
/// and shared across bench worker threads (every implementation is a unit
/// struct, so the bound is free).
pub trait EvalApp: Send + Sync {
    /// Short name matching the paper's Table 1 ("bitonic", "farrow", "IIR",
    /// "bilinear").
    fn name(&self) -> &'static str;

    /// Input block size in bytes, as reported in Table 1.
    fn block_bytes(&self) -> u64;

    /// Build the compute graph.
    fn graph(&self) -> FlatGraph;

    /// Kernel registry for runtime instantiation.
    fn library(&self) -> KernelLibrary;

    /// Measured cost profiles (instrumented intrinsic op counts).
    fn profiles(&self) -> HashMap<String, KernelCostProfile>;

    /// Workload spec for `blocks` input blocks (for the cycle simulator).
    fn workload(&self, blocks: u64) -> WorkloadSpec;

    /// Run `blocks` blocks under `spec` and verify the output against the
    /// scalar reference; returns run metrics. This is the [`RunSpec`]-native
    /// entry point every harness (bench, conformance, pool) launches
    /// through.
    fn run_spec(&self, spec: &RunSpec, blocks: u64) -> Result<AppRun, String>;

    /// Run `blocks` blocks on the given functional runtime — the legacy
    /// entry point, now a shim over [`EvalApp::run_spec`] via
    /// `RunSpec::from(runtime)`.
    #[deprecated(
        since = "0.2.0",
        note = "build a RunSpec (RunSpec::for_graph(..) or RunSpec::from(runtime)) and call run_spec"
    )]
    fn run_functional(&self, runtime: Runtime, blocks: u64) -> Result<AppRun, String> {
        self.run_spec(&RunSpec::from(runtime), blocks)
    }
}

/// FNV-1a over a byte stream.
pub fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Checksum helper for `f32` outputs (bit-exact).
pub fn checksum_f32(data: &[f32]) -> u64 {
    fnv1a(data.iter().flat_map(|v| v.to_le_bytes()))
}

/// Checksum helper for `i16` outputs.
pub fn checksum_i16(data: &[i16]) -> u64 {
    fnv1a(data.iter().flat_map(|v| v.to_le_bytes()))
}

/// All four evaluation applications, in the paper's Table 1 order.
pub fn all_apps() -> Vec<Box<dyn EvalApp>> {
    vec![
        Box::new(crate::bitonic::BitonicApp),
        Box::new(crate::farrow::FarrowApp),
        Box::new(crate::iir::IirApp),
        Box::new(crate::bilinear::BilinearApp),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_known_vector() {
        // FNV-1a of empty input is the offset basis.
        assert_eq!(fnv1a([]), 0xcbf2_9ce4_8422_2325);
        // And it changes with content.
        assert_ne!(fnv1a([1u8]), fnv1a([2u8]));
    }

    #[test]
    fn checksums_are_order_sensitive() {
        assert_ne!(checksum_f32(&[1.0, 2.0]), checksum_f32(&[2.0, 1.0]));
        assert_ne!(checksum_i16(&[1, 2]), checksum_i16(&[2, 1]));
    }

    #[test]
    #[allow(deprecated)]
    fn runtime_shim_lowers_to_equivalent_specs() {
        let c = RunSpec::from(Runtime::Cooperative);
        assert_eq!(c.target(), Backend::Cooperative);
        let s = RunSpec::from(Runtime::CooperativeSeeded(9));
        assert_eq!(s.config().schedule, Schedule::Seeded(9));
        let b = RunSpec::from(Runtime::CooperativeBaseline);
        assert_eq!(b.config().channels, ChannelMode::Shared);
        assert_eq!(b.config().profiling, Profiling::Full);
        let p = RunSpec::from(Runtime::CooperativeProfiled(Profiling::Off));
        assert_eq!(p.config().profiling, Profiling::Off);
        let t = RunSpec::from(Runtime::Threaded);
        assert_eq!(t.target(), Backend::Threaded);
    }

    #[test]
    fn all_apps_listed_in_table1_order() {
        let apps = all_apps();
        let names: Vec<_> = apps.iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["bitonic", "farrow", "IIR", "bilinear"]);
    }

    #[test]
    fn compiled_backend_matches_cooperative_on_every_app() {
        // The compiled static-schedule engine must be bit-identical to the
        // cooperative reference on all four paper graphs (checksums are
        // order-sensitive, so matching checksums mean matching streams).
        for app in all_apps() {
            // All four paper graphs are statically schedulable: the
            // compiled run below must exercise the real compiled engine,
            // not the cooperative fallback.
            let graph = app.graph();
            let lib = app.library();
            cgsim_compiled::CompiledContext::new(
                &graph,
                &lib,
                *RunSpec::for_graph(app.name()).config(),
            )
            .unwrap_or_else(|e| panic!("{} must compile: {e}", app.name()));
            let coop = app
                .run_spec(&RunSpec::for_graph(app.name()), 2)
                .unwrap_or_else(|e| panic!("{} cooperative: {e}", app.name()));
            let compiled = app
                .run_spec(
                    &RunSpec::for_graph(app.name()).backend(Backend::Compiled),
                    2,
                )
                .unwrap_or_else(|e| panic!("{} compiled: {e}", app.name()));
            assert_eq!(
                compiled.checksum,
                coop.checksum,
                "{} diverged under the compiled backend",
                app.name()
            );
            assert_eq!(compiled.out_elems, coop.out_elems, "{}", app.name());
        }
    }
}

//! # cgsim-graphs — the four ported evaluation applications (§5)
//!
//! Ports of the AMD *Vitis-Tutorials* examples the paper evaluates on:
//!
//! | App | Kernels | Block (Table 1) | What it stresses |
//! |---|---|---|---|
//! | [`bitonic`] | 1 | 64 B | AIE API coverage, sync-heavy small blocks |
//! | [`farrow`] | 2 | 4096 B | hand-optimized fixed-point SIMD, ping-pong I/O, RTP |
//! | [`iir`] | 1 | 8192 B | window-bound throughput kernel (parity case) |
//! | [`bilinear`] | 1 | 2048 B | f32 vector MACs, custom struct streams |
//!
//! Every app ships a scalar golden reference with *identical operation
//! ordering*, so functional runs on both runtimes are verified bit-exactly,
//! plus measured cost profiles for the cycle-approximate simulator. The
//! [`apps::EvalApp`] trait is the interface the Table 1/Table 2 harnesses
//! consume.

#![warn(missing_docs)]

pub mod apps;
pub mod bilinear;
pub mod bitonic;
pub mod farrow;
pub mod iir;
pub mod support;

pub use apps::{all_apps, AppRun, EvalApp, Launch};
pub use cgsim_runtime::{Backend, ChannelMode, Profiling, RunSpec, Schedule};

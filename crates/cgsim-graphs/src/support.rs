//! Shared plumbing for the evaluation applications: generic run helpers
//! over both functional runtimes, and profile bookkeeping.

use crate::apps::{AppRun, Launch};
use aie_sim::KernelCostProfile;
use cgsim_compiled::{CompileError, CompiledContext};
use cgsim_core::{FlatGraph, StreamData};
use cgsim_runtime::{Backend, Interrupt, KernelLibrary, RunSpec, RuntimeContext};
use cgsim_threads::{ThreadedConfig, ThreadedContext};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Profile bookkeeping helpers.
pub mod measure {
    use super::*;

    /// Build a profile map from an iterator of profiles.
    pub fn profile_map(
        profiles: impl IntoIterator<Item = KernelCostProfile>,
    ) -> HashMap<String, KernelCostProfile> {
        profiles
            .into_iter()
            .map(|p| (p.kernel.clone(), p))
            .collect()
    }
}

/// Run a one-input/one-output graph under `spec`; returns outputs and raw
/// metrics (checksum/out_elems left for the caller to fill).
pub fn run_simple<TIn: StreamData, TOut: StreamData>(
    graph: &FlatGraph,
    lib: &KernelLibrary,
    spec: &RunSpec,
    input: Vec<TIn>,
) -> Result<(Vec<TOut>, AppRun), String> {
    run_simple_launched(graph, lib, spec, input, Launch::default())
}

/// [`run_simple`] with per-launch resources (cached plan, tracer).
pub fn run_simple_launched<TIn: StreamData, TOut: StreamData>(
    graph: &FlatGraph,
    lib: &KernelLibrary,
    spec: &RunSpec,
    input: Vec<TIn>,
    launch: Launch,
) -> Result<(Vec<TOut>, AppRun), String> {
    run_with_inputs::<TOut>(
        graph,
        lib,
        spec,
        vec![Box::new(move |f| f.feed(0, input))],
        launch,
    )
}

/// Run a graph whose input 0 is a data stream and input 1 a runtime
/// parameter.
pub fn run_with_param<TIn: StreamData, P: StreamData, TOut: StreamData>(
    graph: &FlatGraph,
    lib: &KernelLibrary,
    spec: &RunSpec,
    input: Vec<TIn>,
    param: P,
) -> Result<(Vec<TOut>, AppRun), String> {
    run_with_param_launched(graph, lib, spec, input, param, Launch::default())
}

/// [`run_with_param`] with per-launch resources (cached plan, tracer).
pub fn run_with_param_launched<TIn: StreamData, P: StreamData, TOut: StreamData>(
    graph: &FlatGraph,
    lib: &KernelLibrary,
    spec: &RunSpec,
    input: Vec<TIn>,
    param: P,
    launch: Launch,
) -> Result<(Vec<TOut>, AppRun), String> {
    run_with_inputs::<TOut>(
        graph,
        lib,
        spec,
        vec![
            Box::new(move |f| f.feed(0, input)),
            Box::new(move |f| f.feed_param(1, param)),
        ],
        launch,
    )
}

/// A feed action applied to either runtime through the [`Feeder`] facade.
type FeedFn = Box<dyn FnOnce(&mut dyn Feeder) -> Result<(), cgsim_core::GraphError>>;

/// Facade over the two context types' feed methods.
pub trait Feeder {
    /// Feed a boxed, type-erased vector into positional input `index`.
    fn feed_any(
        &mut self,
        index: usize,
        data: Box<dyn std::any::Any>,
    ) -> Result<(), cgsim_core::GraphError>;
}

trait FeederExt {
    fn feed<T: StreamData>(
        &mut self,
        index: usize,
        data: Vec<T>,
    ) -> Result<(), cgsim_core::GraphError>;
    fn feed_param<T: StreamData>(
        &mut self,
        index: usize,
        value: T,
    ) -> Result<(), cgsim_core::GraphError>;
}

impl FeederExt for dyn Feeder + '_ {
    fn feed<T: StreamData>(
        &mut self,
        index: usize,
        data: Vec<T>,
    ) -> Result<(), cgsim_core::GraphError> {
        self.feed_any(index, Box::new(data))
    }
    fn feed_param<T: StreamData>(
        &mut self,
        index: usize,
        value: T,
    ) -> Result<(), cgsim_core::GraphError> {
        self.feed_any(index, Box::new(vec![value]))
    }
}

struct CoopFeeder<'a, 'g>(&'a mut RuntimeContext<'g>);
struct ThreadFeeder<'a, 'g>(&'a mut ThreadedContext<'g>);
struct CompiledFeeder<'a, 'g>(&'a mut CompiledContext<'g>);

macro_rules! feed_typed {
    ($ctx:expr, $index:expr, $data:expr, [$($t:ty),*]) => {{
        let mut data = $data;
        $(
            data = match data.downcast::<Vec<$t>>() {
                Ok(v) => return $ctx.feed($index, *v),
                Err(d) => d,
            };
        )*
        let _ = data;
        Err(cgsim_core::GraphError::IoArityMismatch {
            what: "inputs",
            expected: 0,
            actual: $index,
        })
    }};
}

/// Stream element types the generic feeder supports. Applications using a
/// custom struct stream register it here.
macro_rules! feeder_impl {
    ($name:ident) => {
        impl Feeder for $name<'_, '_> {
            fn feed_any(
                &mut self,
                index: usize,
                data: Box<dyn std::any::Any>,
            ) -> Result<(), cgsim_core::GraphError> {
                feed_typed!(
                    self.0,
                    index,
                    data,
                    [
                        f32,
                        f64,
                        i16,
                        i32,
                        u32,
                        i64,
                        crate::bilinear::PixelQuad,
                        crate::farrow::BranchSet
                    ]
                )
            }
        }
    };
}

feeder_impl!(CoopFeeder);
feeder_impl!(ThreadFeeder);
feeder_impl!(CompiledFeeder);

fn run_with_inputs<TOut: StreamData>(
    graph: &FlatGraph,
    lib: &KernelLibrary,
    spec: &RunSpec,
    feeds: Vec<FeedFn>,
    mut launch: Launch,
) -> Result<(Vec<TOut>, AppRun), String> {
    match spec.target() {
        Backend::Cooperative => {
            let mut ctx =
                RuntimeContext::from_spec_with_tracer(graph, lib, spec, launch.tracer.clone())
                    .map_err(|e| e.to_string())?;
            for f in feeds {
                f(&mut CoopFeeder(&mut ctx)).map_err(|e| e.to_string())?;
            }
            let out = ctx.collect::<TOut>(0).map_err(|e| e.to_string())?;
            let start = Instant::now();
            let report = ctx.run().map_err(|e| e.to_string())?;
            let wall_time = start.elapsed();
            match report.interrupted() {
                Some(Interrupt::Deadline) => {
                    return Err(format!(
                        "deadline exceeded after {:?} ({} polls)",
                        spec.deadline_budget().unwrap_or_default(),
                        report.exec.polls
                    ))
                }
                Some(Interrupt::Cancelled) => return Err("run cancelled".into()),
                None => {}
            }
            if !report.drained() {
                return Err(format!("graph stalled: {:?}", report.stalled));
            }
            let kernel_fraction = Some(report.exec.kernel_fraction());
            Ok((
                out.take(),
                AppRun {
                    wall_time,
                    out_elems: 0,
                    checksum: 0,
                    kernel_fraction,
                    report: Some(Arc::new(report)),
                },
            ))
        }
        Backend::Compiled => {
            // Instantiate the cached plan when the launch carries one
            // (fault plans disqualify a graph from static scheduling, so a
            // cached plan is only honoured for fault-free specs); otherwise
            // compile the static schedule here. Graphs outside the
            // statically schedulable class (merges, rate imbalance, cycles,
            // fault plans) fall back gracefully to the cooperative engine.
            let cached = match launch.plan.take() {
                Some(plan) if spec.config().faults.is_none() => {
                    let mut ctx = CompiledContext::with_plan(graph, lib, plan, *spec.config());
                    ctx.set_tracer(launch.tracer.clone());
                    // `with_plan` does not arm the deadline; mirror
                    // `from_spec` so the budget still applies.
                    if let Some(budget) = spec.deadline_budget() {
                        ctx.set_deadline(Instant::now() + budget);
                    }
                    Some(ctx)
                }
                _ => None,
            };
            let mut ctx = match cached {
                Some(ctx) => ctx,
                None => match CompiledContext::from_spec_with_tracer(
                    graph,
                    lib,
                    spec,
                    launch.tracer.clone(),
                ) {
                    Ok(ctx) => ctx,
                    Err(CompileError::NotStaticallySchedulable { .. }) => {
                        let coop = spec.clone().backend(Backend::Cooperative);
                        return run_with_inputs::<TOut>(graph, lib, &coop, feeds, launch);
                    }
                    Err(e) => return Err(e.to_string()),
                },
            };
            for f in feeds {
                f(&mut CompiledFeeder(&mut ctx)).map_err(|e| e.to_string())?;
            }
            let out = ctx.collect::<TOut>(0).map_err(|e| e.to_string())?;
            let start = Instant::now();
            let report = ctx.run().map_err(|e| e.to_string())?;
            let wall_time = start.elapsed();
            match report.interrupted() {
                Some(Interrupt::Deadline) => {
                    return Err(format!(
                        "deadline exceeded after {:?} ({} polls)",
                        spec.deadline_budget().unwrap_or_default(),
                        report.exec.polls
                    ))
                }
                Some(Interrupt::Cancelled) => return Err("run cancelled".into()),
                None => {}
            }
            if !report.drained() {
                return Err(format!("graph stalled: {:?}", report.stalled));
            }
            let kernel_fraction = Some(report.exec.kernel_fraction());
            Ok((
                out.take(),
                AppRun {
                    wall_time,
                    out_elems: 0,
                    checksum: 0,
                    kernel_fraction,
                    report: Some(Arc::new(report)),
                },
            ))
        }
        Backend::Threaded => {
            // Only `default_depth` carries over: schedule, faults, profiling
            // and deadline are cooperative-engine concepts (see
            // `Backend::Threaded` docs).
            let config = ThreadedConfig {
                default_depth: spec.config().default_depth,
            };
            let mut ctx = ThreadedContext::new(graph, lib, config).map_err(|e| e.to_string())?;
            for f in feeds {
                f(&mut ThreadFeeder(&mut ctx)).map_err(|e| e.to_string())?;
            }
            let out = ctx.collect::<TOut>(0).map_err(|e| e.to_string())?;
            let start = Instant::now();
            ctx.run().map_err(|e| e.to_string())?;
            let wall_time = start.elapsed();
            Ok((
                out.take(),
                AppRun {
                    wall_time,
                    out_elems: 0,
                    checksum: 0,
                    kernel_fraction: None,
                    report: None,
                },
            ))
        }
    }
}

/// Convenience wrapper used by f32-stream apps.
pub fn run_one_in_one_out_f32(
    graph: &FlatGraph,
    lib: &KernelLibrary,
    spec: &RunSpec,
    input: Vec<f32>,
) -> Result<(Vec<f32>, AppRun), String> {
    run_simple::<f32, f32>(graph, lib, spec, input)
}

//! Port of AMD's `implementing-iir-filter` example, part 2b (§5).
//!
//! A cascade of biquad IIR sections with SIMD feed-forward evaluation,
//! focused on maximizing system throughput. The feed-forward FIR part of
//! each section is vectorised with `fpmac` over 8-lane registers; the
//! recursive feedback is propagated with scalar operations (the serial
//! dependency hardware also pays). Samples move through large ping-pong
//! windows, which is why this example reaches parity in Table 1: its I/O
//! is window-DMA-driven, not per-element stream access.
//!
//! * Block size (Table 1): **8192 bytes** = 2048 × f32 per kernel
//!   iteration (one full window).

use crate::apps::{checksum_f32, AppRun, EvalApp, Launch};
use crate::support::{measure, run_simple_launched};
use aie_intrinsics::counter::{metered, record_n};
use aie_intrinsics::{AccF32, OpKind};
use aie_sim::{KernelCostProfile, PortTraffic, WorkloadSpec};
use cgsim_core::{FlatGraph, PortKind, PortSettings};
use cgsim_runtime::{compute_graph, compute_kernel, KernelLibrary, RunSpec};
use std::collections::HashMap;

/// SIMD lanes of the float datapath.
pub const LANES: usize = 8;
/// Biquad sections in the cascade.
pub const SECTIONS: usize = 4;
/// Input block size in bytes (Table 1): 2048 f32 samples.
pub const BLOCK_BYTES: u64 = 8192;
/// Samples per block/window.
pub const BLOCK_SAMPLES: usize = (BLOCK_BYTES / 4) as usize;

/// One biquad section: y\[n\] = b0·x\[n\] + b1·x\[n-1\] + b2·x\[n-2\]
///                            − a1·y\[n-1\] − a2·y\[n-2\].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Biquad {
    /// Feed-forward coefficients.
    pub b: [f32; 3],
    /// Feedback coefficients (a1, a2).
    pub a: [f32; 2],
}

/// The evaluation filter: a 4-section Butterworth-style low-pass cascade
/// (coefficients chosen for stability; the algorithmic structure is what
/// matters for the evaluation, not the passband).
pub const CASCADE: [Biquad; SECTIONS] = [
    Biquad {
        b: [0.2066, 0.4131, 0.2066],
        a: [-0.3695, 0.1958],
    },
    Biquad {
        b: [0.1998, 0.3996, 0.1998],
        a: [-0.3575, 0.1566],
    },
    Biquad {
        b: [0.1931, 0.3863, 0.1931],
        a: [-0.3457, 0.1183],
    },
    Biquad {
        b: [0.1867, 0.3734, 0.1867],
        a: [-0.3342, 0.0810],
    },
];

/// Per-section running state (input and output history).
#[derive(Clone, Copy, Debug, Default)]
pub struct SectionState {
    /// x[n-1], x[n-2].
    pub x: [f32; 2],
    /// y[n-1], y[n-2].
    pub y: [f32; 2],
}

/// Process one window through one biquad section, vectorised: the
/// feed-forward sum is computed 8 lanes at a time with `fpmac`, the
/// feedback recursion runs as scalar ops. Shared between kernel and
/// profiler.
pub fn biquad_window(input: &[f32], section: &Biquad, state: &mut SectionState) -> Vec<f32> {
    let mut out = Vec::with_capacity(input.len());
    // Extended input with history for the sliding feed-forward taps.
    let mut ext = Vec::with_capacity(input.len() + 2);
    ext.push(state.x[1]); // x[n-2]
    ext.push(state.x[0]); // x[n-1]
    ext.extend_from_slice(input);

    let mut chunk_start = 0;
    while chunk_start + LANES <= input.len() {
        // ff[i] = b2·x[n-2] + b1·x[n-1] + b0·x[n] — sliding fpmac, lowest
        // tap first so the accumulation order matches the scalar reference.
        let window = &ext[chunk_start..chunk_start + LANES + 2];
        let mut acc = AccF32::<LANES>::zero();
        acc = acc.sliding_fpmac(window, 0, section.b[2]);
        acc = acc.sliding_fpmac(window, 1, section.b[1]);
        acc = acc.sliding_fpmac(window, 2, section.b[0]);
        let ff = acc.to_vector().to_array();

        // Scalar feedback recursion across the 8 lanes: 2 multiplies +
        // 2 subtracts fold into two scalar issue slots per sample, booked
        // once per chunk instead of inside the serial loop.
        record_n(OpKind::Scalar, 2 * LANES as u64);
        for &f in &ff {
            let y = f - section.a[0] * state.y[0] - section.a[1] * state.y[1];
            state.y[1] = state.y[0];
            state.y[0] = y;
            out.push(y);
        }
        chunk_start += LANES;
    }
    // Update input history from the tail.
    let n = input.len();
    state.x[0] = input[n - 1];
    state.x[1] = input[n - 2];
    out
}

/// Run one window through the whole cascade.
pub fn cascade_window(input: &[f32], states: &mut [SectionState; SECTIONS]) -> Vec<f32> {
    let mut data = input.to_vec();
    for (section, state) in CASCADE.iter().zip(states.iter_mut()) {
        data = biquad_window(&data, section, state);
    }
    data
}

compute_kernel! {
    /// 4-section SIMD biquad cascade over 2048-sample ping-pong windows.
    #[realm(aie)]
    pub fn iir_kernel(
        samples: ReadPort<f32> @ PortSettings::new().window_bytes(8192).ping_pong(),
        out: WritePort<f32> @ PortSettings::new().window_bytes(8192).ping_pong(),
    ) {
        let mut states = [SectionState::default(); SECTIONS];
        while let Some(window) = samples.get_window(BLOCK_SAMPLES).await {
            out.put_window(cascade_window(&window, &mut states)).await;
        }
    }
}

/// Scalar golden reference with identical operation ordering (bit-exact
/// match with the vector kernel expected).
pub fn reference(input: &[f32]) -> Vec<f32> {
    let mut states = [SectionState::default(); SECTIONS];
    let full = input.len() / BLOCK_SAMPLES * BLOCK_SAMPLES;
    let mut out = Vec::with_capacity(full);
    for window in input[..full].chunks_exact(BLOCK_SAMPLES) {
        let mut data = window.to_vec();
        for (section, state) in CASCADE.iter().zip(states.iter_mut()) {
            let mut ext = vec![state.x[1], state.x[0]];
            ext.extend_from_slice(&data);
            let mut next = Vec::with_capacity(data.len());
            for n in 0..data.len() {
                // Same accumulation order as the fpmac sequence above:
                // b2-tap first, then b1, then b0.
                let ff = 0.0
                    + section.b[2] * ext[n]
                    + section.b[1] * ext[n + 1]
                    + section.b[0] * ext[n + 2];
                let y = ff - section.a[0] * state.y[0] - section.a[1] * state.y[1];
                state.y[1] = state.y[0];
                state.y[0] = y;
                next.push(y);
            }
            let len = data.len();
            state.x[0] = data[len - 1];
            state.x[1] = data[len - 2];
            data = next;
        }
        out.extend(data);
    }
    out
}

/// Build the single-kernel graph.
pub fn build_graph() -> FlatGraph {
    compute_graph! {
        name: iir,
        inputs: (samples: f32),
        body: {
            let filtered = wire::<f32>();
            iir_kernel(samples, filtered);
            attr(samples, "plio_name", "iir_in");
            attr(filtered, "plio_name", "iir_out");
        },
        outputs: (filtered),
    }
    .expect("iir graph builds")
}

/// Deterministic pseudo-random f32 workload.
pub fn make_input(blocks: u64) -> Vec<f32> {
    use rand::{rngs::StdRng, RngExt, SeedableRng};
    let mut rng = StdRng::seed_from_u64(0x11E0_0002);
    (0..blocks * BLOCK_SAMPLES as u64)
        .map(|_| rng.random_range(-1.0f32..1.0))
        .collect()
}

/// The Table 1 / Table 2 application record.
pub struct IirApp;

impl EvalApp for IirApp {
    fn name(&self) -> &'static str {
        "IIR"
    }

    fn block_bytes(&self) -> u64 {
        BLOCK_BYTES
    }

    fn graph(&self) -> FlatGraph {
        build_graph()
    }

    fn library(&self) -> KernelLibrary {
        KernelLibrary::with(|l| {
            l.register::<iir_kernel>();
        })
    }

    fn profiles(&self) -> HashMap<String, KernelCostProfile> {
        let input = make_input(1);
        let mut states = [SectionState::default(); SECTIONS];
        let ((), ops) = metered(|| {
            let _ = cascade_window(&input, &mut states);
        });
        let window = |elems: u64| PortTraffic {
            elems_per_iter: elems,
            elem_bytes: 4,
            kind: PortKind::Window,
        };
        let profile = KernelCostProfile::measured(
            "iir_kernel",
            ops,
            vec![window(BLOCK_SAMPLES as u64)],
            vec![window(BLOCK_SAMPLES as u64)],
        );
        measure::profile_map([profile])
    }

    fn workload(&self, blocks: u64) -> WorkloadSpec {
        WorkloadSpec {
            blocks,
            elems_per_block_in: vec![BLOCK_SAMPLES as u64],
            elems_per_block_out: vec![BLOCK_SAMPLES as u64],
        }
    }

    fn run_launched(&self, spec: &RunSpec, blocks: u64, launch: Launch) -> Result<AppRun, String> {
        let input = make_input(blocks);
        let expect = reference(&input);
        let graph = self.graph();
        let lib = self.library();
        let (got, run): (Vec<f32>, AppRun) =
            run_simple_launched(&graph, &lib, spec, input, launch)?;
        if got != expect {
            let first = got.iter().zip(&expect).position(|(a, b)| a != b);
            return Err(format!(
                "IIR output mismatch: {} vs {} elements, first diff at {first:?}",
                got.len(),
                expect.len(),
            ));
        }
        Ok(AppRun {
            checksum: checksum_f32(&got),
            out_elems: got.len(),
            ..run
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use cgsim_runtime::Backend;

    #[test]
    fn kernel_matches_reference_cooperative() {
        IirApp.run_spec(&RunSpec::for_graph("iir"), 2).unwrap();
    }

    #[test]
    fn kernel_matches_reference_threaded() {
        IirApp
            .run_spec(&RunSpec::for_graph("iir").backend(Backend::Threaded), 2)
            .unwrap();
    }

    #[test]
    fn state_carries_across_windows() {
        // Processing 2 blocks at once must equal processing them as one
        // stream through the kernel (the kernel's states persist).
        let input = make_input(2);
        let whole = reference(&input);
        // Reference itself is windowed; cross-check continuity: the filter
        // output at the window boundary must not reset (non-zero history).
        let boundary = BLOCK_SAMPLES;
        let isolated = reference(&input[boundary..]);
        assert_ne!(whole[boundary], isolated[0], "state must persist");
    }

    #[test]
    fn filter_is_stable_and_low_pass() {
        // DC gain of each section: sum(b) / (1 + sum(a)); cascade of gains
        // near 1, and a bounded response to bounded input.
        let input = vec![1.0f32; BLOCK_SAMPLES];
        let mut states = [SectionState::default(); SECTIONS];
        let out = cascade_window(&input, &mut states);
        let tail = out[BLOCK_SAMPLES - 1];
        assert!((0.5..1.5).contains(&tail), "DC response {tail}");
        assert!(out.iter().all(|v| v.abs() < 10.0), "unstable filter");
    }

    #[test]
    fn profile_mixes_vmac_and_scalar() {
        let p = &IirApp.profiles()["iir_kernel"];
        // 3 fpmacs per 8 lanes per section: 2048/8 × 3 × 4 = 3072 VMACs.
        assert_eq!(p.ops.get(OpKind::VMac), 3072);
        // Scalar feedback: 2 per sample per section = 16384.
        assert_eq!(p.ops.get(OpKind::Scalar), 16384);
        // The scalar slot binds the loop — the structural reason this
        // kernel's compute dwarfs its window I/O and the extraction penalty
        // disappears (Table 1: IIR at parity).
        assert_eq!(p.compute_cycles, 16384);
        assert_eq!(p.stream_accesses(), 0);
    }

    #[test]
    fn graph_uses_pingpong_windows() {
        let g = build_graph();
        g.validate().unwrap();
        for c in &g.connectors {
            assert_eq!(c.kind, cgsim_core::PortKind::Window);
            assert!(c.settings.ping_pong);
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]
        /// The vectorised cascade equals the scalar reference bit-exactly
        /// on arbitrary single windows.
        #[test]
        fn cascade_matches_reference_on_random_windows(
            raw in proptest::collection::vec(-10_000i32..10_000, BLOCK_SAMPLES),
        ) {
            let input: Vec<f32> = raw.into_iter().map(|v| v as f32 / 10_000.0).collect();
            let mut states = [SectionState::default(); SECTIONS];
            let vec_out = cascade_window(&input, &mut states);
            let scalar = reference(&input);
            proptest::prop_assert_eq!(vec_out, scalar);
        }
    }

    #[test]
    fn block_accounting_matches_table1() {
        assert_eq!(BLOCK_BYTES, (BLOCK_SAMPLES * 4) as u64);
    }
}

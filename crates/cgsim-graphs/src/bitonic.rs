//! Port of AMD's `bitonic-sorting` example (§5).
//!
//! A single-kernel graph implementing a 16-wide bitonic sort on 32-bit
//! floating-point values with the AIE vector API. The paper uses it as the
//! API-compatibility stress test and as the sync-heavy case in Table 2
//! (small 64-byte blocks → frequent kernel-to-kernel synchronisation).
//!
//! * Block size (Table 1): **64 bytes** = 16 × f32 per kernel iteration.
//! * Algorithm: in-register bitonic network of shuffle/min/max/select
//!   stages ([`aie_intrinsics::ops::bitonic_sort16`]).

use crate::apps::{checksum_f32, AppRun, EvalApp, Launch};
use crate::support::{measure, run_simple_launched};
use aie_intrinsics::counter::metered;
use aie_intrinsics::ops::bitonic_sort16;
use aie_intrinsics::Vector;
use aie_sim::{KernelCostProfile, PortTraffic, WorkloadSpec};
use cgsim_core::{FlatGraph, PortKind};
use cgsim_runtime::{compute_graph, compute_kernel, KernelLibrary, RunSpec};
use std::collections::HashMap;

/// Elements per kernel iteration (one vector register).
pub const SORT_WIDTH: usize = 16;
/// Input block size in bytes (Table 1).
pub const BLOCK_BYTES: u64 = 64;

/// Sort one 16-element chunk with the vectorised bitonic network — the
/// kernel's compute routine, shared between the coroutine and the cost
/// profiler.
pub fn sort16(chunk: &[f32]) -> Vec<f32> {
    let v = Vector::<f32, SORT_WIDTH>::load(chunk);
    let sorted = bitonic_sort16(v);
    let mut out = vec![0.0f32; SORT_WIDTH];
    sorted.store(&mut out);
    out
}

compute_kernel! {
    /// 16-wide bitonic sorter: reads 16 floats, emits them sorted
    /// ascending.
    #[realm(aie)]
    pub fn bitonic_kernel(input: ReadPort<f32>, out: WritePort<f32>) {
        while let Some(chunk) = input.get_window(SORT_WIDTH).await {
            out.put_window(sort16(&chunk)).await;
        }
    }
}

/// Scalar golden reference: sort each 16-element chunk.
pub fn reference(input: &[f32]) -> Vec<f32> {
    let mut out = Vec::with_capacity(input.len());
    for chunk in input.chunks_exact(SORT_WIDTH) {
        let mut c = chunk.to_vec();
        c.sort_by(f32::total_cmp);
        out.extend(c);
    }
    out
}

/// Build the single-kernel graph.
pub fn build_graph() -> FlatGraph {
    compute_graph! {
        name: bitonic,
        inputs: (samples: f32),
        body: {
            let sorted = wire::<f32>();
            bitonic_kernel(samples, sorted);
            attr(samples, "plio_name", "samples_in");
            attr(sorted, "plio_name", "sorted_out");
        },
        outputs: (sorted),
    }
    .expect("bitonic graph builds")
}

/// Deterministic pseudo-random workload of `blocks` 16-float blocks.
pub fn make_input(blocks: u64) -> Vec<f32> {
    use rand::{rngs::StdRng, RngExt, SeedableRng};
    let mut rng = StdRng::seed_from_u64(0xB170_71C5);
    (0..blocks * SORT_WIDTH as u64)
        .map(|_| rng.random_range(-1000.0f32..1000.0))
        .collect()
}

/// The Table 1 / Table 2 application record.
pub struct BitonicApp;

impl EvalApp for BitonicApp {
    fn name(&self) -> &'static str {
        "bitonic"
    }

    fn block_bytes(&self) -> u64 {
        BLOCK_BYTES
    }

    fn graph(&self) -> FlatGraph {
        build_graph()
    }

    fn library(&self) -> KernelLibrary {
        KernelLibrary::with(|l| {
            l.register::<bitonic_kernel>();
        })
    }

    fn profiles(&self) -> HashMap<String, KernelCostProfile> {
        // Measure one iteration of the compute routine.
        let input = make_input(1);
        let ((), ops) = metered(|| {
            let _ = sort16(&input);
        });
        let stream = |elems| PortTraffic {
            elems_per_iter: elems,
            elem_bytes: 4,
            kind: PortKind::Stream,
        };
        let profile = KernelCostProfile::measured(
            "bitonic_kernel",
            ops,
            vec![stream(SORT_WIDTH as u64)],
            vec![stream(SORT_WIDTH as u64)],
        );
        measure::profile_map([profile])
    }

    fn workload(&self, blocks: u64) -> WorkloadSpec {
        WorkloadSpec {
            blocks,
            elems_per_block_in: vec![SORT_WIDTH as u64],
            elems_per_block_out: vec![SORT_WIDTH as u64],
        }
    }

    fn run_launched(&self, spec: &RunSpec, blocks: u64, launch: Launch) -> Result<AppRun, String> {
        let input = make_input(blocks);
        let expect = reference(&input);
        let graph = self.graph();
        let lib = self.library();
        let (got, run) = run_simple_launched::<f32, f32>(&graph, &lib, spec, input, launch)?;
        if got != expect {
            return Err(format!(
                "bitonic output mismatch: {} vs {} elements, first diff at {:?}",
                got.len(),
                expect.len(),
                got.iter().zip(&expect).position(|(a, b)| a != b)
            ));
        }
        Ok(AppRun {
            checksum: checksum_f32(&got),
            out_elems: got.len(),
            ..run
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use cgsim_runtime::Backend;

    #[test]
    fn kernel_matches_reference_cooperative() {
        BitonicApp
            .run_spec(&RunSpec::for_graph("bitonic"), 32)
            .unwrap();
    }

    #[test]
    fn kernel_matches_reference_threaded() {
        BitonicApp
            .run_spec(
                &RunSpec::for_graph("bitonic").backend(Backend::Threaded),
                32,
            )
            .unwrap();
    }

    #[test]
    fn both_runtimes_agree_bit_exactly() {
        let coop = RunSpec::for_graph("bitonic");
        let thr = RunSpec::for_graph("bitonic").backend(Backend::Threaded);
        let a = BitonicApp.run_spec(&coop, 16).unwrap();
        let b = BitonicApp.run_spec(&thr, 16).unwrap();
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(a.out_elems, b.out_elems);
    }

    #[test]
    fn graph_shape() {
        let g = build_graph();
        assert_eq!(g.kernels.len(), 1);
        assert_eq!(g.inputs.len(), 1);
        assert_eq!(g.outputs.len(), 1);
        g.validate().unwrap();
    }

    #[test]
    fn profile_is_shuffle_heavy() {
        use aie_intrinsics::OpKind;
        let p = &BitonicApp.profiles()["bitonic_kernel"];
        // The bitonic network is permute/ALU bound: 10 stages of
        // shuffle+min+max+select dominate over loads/stores.
        assert!(p.ops.get(OpKind::VShuffle) >= 10);
        assert!(p.ops.get(OpKind::VAlu) >= 20);
        assert!(p.compute_cycles >= 40);
    }

    #[test]
    fn block_accounting_matches_table1() {
        // 64-byte blocks = 16 f32.
        assert_eq!(BLOCK_BYTES, (SORT_WIDTH * 4) as u64);
    }

    #[test]
    fn reference_sorts_chunkwise_not_globally() {
        let input: Vec<f32> = (0..32).rev().map(|v| v as f32).collect();
        let r = reference(&input);
        // First chunk sorted, second chunk sorted, but 2nd chunk values are
        // all smaller (input was globally descending).
        assert!(r[..16].windows(2).all(|w| w[0] <= w[1]));
        assert!(r[16..].windows(2).all(|w| w[0] <= w[1]));
        assert!(r[0] > r[16]);
    }
}

//! Port of AMD's `farrow_filter` example (§5).
//!
//! A fractional-delay Farrow filter [Farrow 1988]: four parallel FIR
//! branches evaluated per sample, combined by a Horner polynomial in the
//! fractional delay `mu`. The AMD example uses two kernels with ping-pong
//! buffer I/O and hand-optimized fixed-point SIMD convolution; the paper
//! selects it because its heavily optimized nature exposes translation
//! overhead.
//!
//! Structure here mirrors that:
//!
//! * [`farrow_fir_kernel`] — the branch FIR stage: 16 samples per vector
//!   iteration, four 4-tap branch convolutions via sliding `mac` into
//!   48-bit accumulators, `srs` back to Q15; emits a [`BranchSet`] struct
//!   stream (custom struct streams are the type-safety win §5.1 calls out).
//! * [`farrow_comb_kernel`] — Horner combination with the runtime
//!   parameter `mu` (Q15).
//!
//! * Block size (Table 1): **4096 bytes** = 2048 × i16 samples.

use crate::apps::{checksum_i16, AppRun, EvalApp, Launch};
use crate::support::{measure, run_with_param_launched};
use aie_intrinsics::counter::metered;
use aie_intrinsics::fixed::{quantize_q15, srs};
use aie_intrinsics::{AccI48, Vector};
use aie_sim::{KernelCostProfile, PortTraffic, WorkloadSpec};
use cgsim_core::{FlatGraph, PortKind, PortSettings};
use cgsim_runtime::{compute_graph, compute_kernel, KernelLibrary, RunSpec};
use std::collections::HashMap;

/// Vector width of the fixed-point datapath.
pub const LANES: usize = 16;
/// Taps per polynomial branch.
pub const TAPS: usize = 4;
/// Polynomial branches (cubic Farrow).
pub const BRANCHES: usize = 4;
/// Q-format fractional bits for samples and coefficients.
pub const QBITS: u32 = 15;
/// Input block size in bytes (Table 1): 2048 i16 samples.
pub const BLOCK_BYTES: u64 = 4096;
/// Samples per block.
pub const BLOCK_SAMPLES: usize = (BLOCK_BYTES / 2) as usize;

/// The cubic-Lagrange Farrow branch coefficients (floating prototype),
/// branch-major: `COEFFS[b][t]`.
pub const PROTO_COEFFS: [[f64; TAPS]; BRANCHES] = [
    // b0: the pass-through branch.
    [0.0, 1.0, 0.0, 0.0],
    // b1.
    [-1.0 / 3.0, -0.5, 1.0, -1.0 / 6.0],
    // b2.
    [0.5, -1.0, 0.5, 0.0],
    // b3.
    [-1.0 / 6.0, 0.5, -0.5, 1.0 / 6.0],
];

/// Q15-quantised branch coefficients, as the hardware kernel uses them.
pub fn q15_coeffs() -> [[i16; TAPS]; BRANCHES] {
    let mut out = [[0i16; TAPS]; BRANCHES];
    for (b, branch) in PROTO_COEFFS.iter().enumerate() {
        for (t, &c) in branch.iter().enumerate() {
            // Scale by 1/2 to keep the Horner accumulation inside Q15
            // (compensated by one less shift at readout).
            out[b][t] = quantize_q15(c * 0.5, QBITS);
        }
    }
    out
}

/// Branch outputs for one sample: the struct carried on the inter-kernel
/// stream (user-defined struct streams, §5.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BranchSet {
    /// Q15 branch FIR outputs `b0..b3`.
    pub b: [i16; BRANCHES],
}

/// One vector iteration of the FIR stage: `data` holds `LANES + TAPS - 1`
/// samples (history first); returns `LANES` branch sets. Shared between the
/// kernel coroutine and the cost profiler.
pub fn fir_iteration(data: &[i16], coeffs: &[[i16; TAPS]; BRANCHES]) -> Vec<BranchSet> {
    debug_assert!(data.len() >= LANES + TAPS - 1);
    let mut branch_out = [[0i16; LANES]; BRANCHES];
    for (b, branch) in coeffs.iter().enumerate() {
        let mut acc = AccI48::<LANES>::zero();
        for (tap, &c) in branch.iter().enumerate() {
            acc = acc.sliding_mac(data, tap, c);
        }
        let v = acc.srs(QBITS); // Q15·Q15 → Q15 readout (coeffs pre-halved)
        v.store(&mut branch_out[b]);
    }
    (0..LANES)
        .map(|i| BranchSet {
            b: [
                branch_out[0][i],
                branch_out[1][i],
                branch_out[2][i],
                branch_out[3][i],
            ],
        })
        .collect()
}

/// One vector iteration of the Horner combiner over `LANES` branch sets
/// with fractional delay `mu` (Q15). Mirrors the AMD kernel's vectorised
/// polynomial evaluation: `y = ((b3·mu + b2)·mu + b1)·mu + b0`, all in Q15
/// with `srs` rescaling after each product (×2 readjusts the pre-halved
/// coefficient scale).
pub fn comb_iteration(sets: &[BranchSet], mu_q15: i16) -> Vec<i16> {
    debug_assert_eq!(sets.len(), LANES);
    let branch_vec = |b: usize| {
        let lanes: [i16; LANES] = std::array::from_fn(|i| sets[i].b[b]);
        Vector::<i16, LANES>::from_array(lanes)
    };
    let mu = Vector::<i16, LANES>::splat(mu_q15);
    let mut acc_v = branch_vec(3);
    for b in (0..3).rev() {
        // acc = acc*mu (Q15) + branch_b
        let prod = AccI48::<LANES>::mul(acc_v, mu).srs(QBITS);
        acc_v = prod + branch_vec(b);
    }
    // Undo the 0.5 coefficient pre-scale.
    let doubled = acc_v + acc_v;
    doubled.to_array().to_vec()
}

compute_kernel! {
    /// Branch FIR stage: 4 parallel 4-tap convolutions per sample,
    /// vectorised 16-wide with sliding fixed-point MACs.
    #[realm(aie)]
    pub fn farrow_fir_kernel(
        samples: ReadPort<i16> @ PortSettings::new().window_bytes(4096).ping_pong(),
        branches: WritePort<BranchSet> @ PortSettings::new().window_bytes(1024).ping_pong(),
    ) {
        let coeffs = q15_coeffs();
        // Persistent sliding-window history across iterations (zeros
        // prime the filter, like the hardware's initial window margin).
        let mut history = vec![0i16; TAPS - 1];
        while let Some(chunk) = samples.get_window(LANES).await {
            let mut data = history.clone();
            data.extend_from_slice(&chunk);
            let sets = fir_iteration(&data, &coeffs);
            history = data[data.len() - (TAPS - 1)..].to_vec();
            branches.put_window(sets).await;
        }
    }
}

compute_kernel! {
    /// Horner combiner: evaluates the delay polynomial at the runtime
    /// parameter `mu` (Q15).
    #[realm(aie)]
    pub fn farrow_comb_kernel(
        branches: ReadPort<BranchSet> @ PortSettings::new().window_bytes(1024).ping_pong(),
        mu: ReadPort<i16> @ PortSettings::new().runtime_param(),
        out: WritePort<i16> @ PortSettings::new().window_bytes(4096).ping_pong(),
    ) {
        let mu_q15 = mu.get().await.unwrap_or(0);
        while let Some(sets) = branches.get_window(LANES).await {
            out.put_window(comb_iteration(&sets, mu_q15)).await;
        }
    }
}

/// Scalar golden reference using the *same* fixed-point rounding as the
/// vector kernels (exact match expected).
pub fn reference(input: &[i16], mu_q15: i16) -> Vec<i16> {
    let coeffs = q15_coeffs();
    let mut padded = vec![0i16; TAPS - 1];
    padded.extend_from_slice(input);
    let mut out = Vec::with_capacity(input.len());
    let full_lanes = input.len() / LANES * LANES;
    for n in 0..full_lanes {
        // Branch FIRs.
        let mut b = [0i16; BRANCHES];
        for (bi, branch) in coeffs.iter().enumerate() {
            let mut acc: i64 = 0;
            for (t, &c) in branch.iter().enumerate() {
                acc += (padded[n + t] as i64) * (c as i64);
            }
            b[bi] = srs(acc, QBITS);
        }
        // Horner in mu.
        let mut acc = b[3];
        for bi in (0..3).rev() {
            let prod = srs((acc as i64) * (mu_q15 as i64), QBITS);
            acc = prod.wrapping_add(b[bi]);
        }
        out.push(acc.wrapping_add(acc));
    }
    out
}

/// Build the two-kernel graph (Figure 6 workload).
pub fn build_graph() -> FlatGraph {
    compute_graph! {
        name: farrow,
        inputs: (samples: i16, mu: i16),
        body: {
            let branches = wire::<BranchSet>();
            let delayed = wire::<i16>();
            farrow_fir_kernel(samples, branches);
            farrow_comb_kernel(branches, mu, delayed);
            attr(samples, "plio_name", "samples_in");
            attr(delayed, "plio_name", "delayed_out");
        },
        outputs: (delayed),
    }
    .expect("farrow graph builds")
}

/// Deterministic pseudo-random i16 workload.
pub fn make_input(blocks: u64) -> Vec<i16> {
    use rand::{rngs::StdRng, RngExt, SeedableRng};
    let mut rng = StdRng::seed_from_u64(0xFA44_0001);
    (0..blocks * BLOCK_SAMPLES as u64)
        .map(|_| rng.random_range(-12000i16..12000))
        .collect()
}

/// The default fractional delay used in evaluation runs: µ = 0.37.
pub fn default_mu() -> i16 {
    quantize_q15(0.37, QBITS)
}

/// The Table 1 / Table 2 application record.
pub struct FarrowApp;

impl EvalApp for FarrowApp {
    fn name(&self) -> &'static str {
        "farrow"
    }

    fn block_bytes(&self) -> u64 {
        BLOCK_BYTES
    }

    fn graph(&self) -> FlatGraph {
        build_graph()
    }

    fn library(&self) -> KernelLibrary {
        KernelLibrary::with(|l| {
            l.register::<farrow_fir_kernel>();
            l.register::<farrow_comb_kernel>();
        })
    }

    fn profiles(&self) -> HashMap<String, KernelCostProfile> {
        let coeffs = q15_coeffs();
        let data = vec![100i16; LANES + TAPS - 1];
        let (sets, fir_ops) = metered(|| fir_iteration(&data, &coeffs));
        let ((), comb_ops) = metered(|| {
            let _ = comb_iteration(&sets, default_mu());
        });
        let stream16 = |elems: u64, bytes: u64| PortTraffic {
            elems_per_iter: elems,
            elem_bytes: bytes,
            kind: PortKind::Stream,
        };
        let window = |elems: u64, bytes: u64| PortTraffic {
            elems_per_iter: elems,
            elem_bytes: bytes,
            kind: PortKind::Window,
        };
        let rtp = PortTraffic {
            elems_per_iter: 0,
            elem_bytes: 2,
            kind: PortKind::RuntimeParam,
        };
        let _ = stream16; // all farrow connections are window/RTP-based
        let fir = KernelCostProfile::measured(
            "farrow_fir_kernel",
            fir_ops,
            vec![window(LANES as u64, 2)],
            vec![window(LANES as u64, 8)], // BranchSet = 4×i16, ping-pong
        );
        let comb = KernelCostProfile::measured(
            "farrow_comb_kernel",
            comb_ops,
            vec![window(LANES as u64, 8), rtp],
            vec![window(LANES as u64, 2)],
        );
        measure::profile_map([fir, comb])
    }

    fn workload(&self, blocks: u64) -> WorkloadSpec {
        WorkloadSpec {
            blocks,
            elems_per_block_in: vec![BLOCK_SAMPLES as u64, 0],
            elems_per_block_out: vec![BLOCK_SAMPLES as u64],
        }
    }

    fn run_launched(&self, spec: &RunSpec, blocks: u64, launch: Launch) -> Result<AppRun, String> {
        let input = make_input(blocks);
        let mu = default_mu();
        let expect = reference(&input, mu);
        let graph = self.graph();
        let lib = self.library();
        let (got, run): (Vec<i16>, AppRun) =
            run_with_param_launched(&graph, &lib, spec, input, mu, launch)?;
        if got != expect {
            let first = got.iter().zip(&expect).position(|(a, b)| a != b);
            return Err(format!(
                "farrow output mismatch: {} vs {} elements, first diff at {first:?}",
                got.len(),
                expect.len(),
            ));
        }
        Ok(AppRun {
            checksum: checksum_i16(&got),
            out_elems: got.len(),
            ..run
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use cgsim_runtime::Backend;

    #[test]
    fn kernels_match_reference_cooperative() {
        FarrowApp
            .run_spec(&RunSpec::for_graph("farrow"), 2)
            .unwrap();
    }

    #[test]
    fn kernels_match_reference_threaded() {
        FarrowApp
            .run_spec(&RunSpec::for_graph("farrow").backend(Backend::Threaded), 2)
            .unwrap();
    }

    #[test]
    fn runtimes_agree() {
        let a = FarrowApp
            .run_spec(&RunSpec::for_graph("farrow"), 1)
            .unwrap();
        let b = FarrowApp
            .run_spec(&RunSpec::for_graph("farrow").backend(Backend::Threaded), 1)
            .unwrap();
        assert_eq!(a.checksum, b.checksum);
    }

    #[test]
    fn graph_has_two_kernels_and_rtp() {
        let g = build_graph();
        assert_eq!(g.kernels.len(), 2);
        g.validate().unwrap();
        // The mu connector is a runtime parameter.
        let mu_conn = g.inputs[1];
        assert_eq!(
            g.connectors[mu_conn.index()].kind,
            cgsim_core::PortKind::RuntimeParam
        );
        // The sample input is a ping-pong window.
        let s_conn = g.inputs[0];
        assert_eq!(
            g.connectors[s_conn.index()].kind,
            cgsim_core::PortKind::Window
        );
        assert!(g.connectors[s_conn.index()].settings.ping_pong);
    }

    #[test]
    fn zero_mu_reduces_to_pure_delay() {
        // With mu = 0 only branch b0 (the pass-through tap at index 1 of
        // the 4-tap window with 3 samples of history) remains: the output
        // is the input delayed by two samples, up to ±1 LSB from the
        // halve-then-double Q15 rescale.
        let input = make_input(1);
        let out = reference(&input, 0);
        for n in 2..64 {
            let diff = (out[n] as i32 - input[n - 2] as i32).abs();
            assert!(diff <= 1, "sample {n}: {} vs {}", out[n], input[n - 2]);
        }
        assert_eq!(out[0], 0); // primed with zero history
    }

    #[test]
    fn fir_iteration_is_mac_bound() {
        use aie_intrinsics::OpKind;
        let p = &FarrowApp.profiles()["farrow_fir_kernel"];
        // 4 branches × 4 taps = 16 sliding MACs per 16 samples.
        assert_eq!(p.ops.get(OpKind::VMac), 16);
        assert!(p.compute_cycles >= 16);
    }

    #[test]
    fn branchset_is_8_bytes() {
        assert_eq!(std::mem::size_of::<BranchSet>(), 8);
    }

    #[test]
    fn block_accounting_matches_table1() {
        assert_eq!(BLOCK_BYTES, (BLOCK_SAMPLES * 2) as u64);
        assert_eq!(BLOCK_SAMPLES % LANES, 0);
    }

    proptest::proptest! {
        /// Vector pipeline (fir + comb) equals the scalar reference on any
        /// mu and input — the fixed-point ops line up exactly.
        #[test]
        fn pipeline_matches_reference(
            raw in proptest::collection::vec(-20000i16..20000, LANES),
            mu in -32768i16..32767,
        ) {
            let coeffs = q15_coeffs();
            let mut data = vec![0i16; TAPS - 1];
            data.extend_from_slice(&raw);
            let sets = fir_iteration(&data, &coeffs);
            let vec_out = comb_iteration(&sets, mu);
            let scalar = reference(&raw, mu);
            proptest::prop_assert_eq!(vec_out, scalar);
        }
    }
}

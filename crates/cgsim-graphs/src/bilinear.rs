//! Port of AMD's `Bilinear_Interpolation` example (§5).
//!
//! Performs bilinear interpolation on image data with AIE vector
//! intrinsics: for each query point, the four surrounding pixels are
//! weighted by the fractional offsets (fx, fy). The cgsim port streams
//! [`PixelQuad`] structs — a user-defined struct stream, the type-safety
//! improvement §5.1 highlights over AMD's flat buffers.
//!
//! * Block size (Table 1): **2048 bytes** of output = 512 × f32
//!   interpolated pixels per block; the kernel processes 8 quads per
//!   vector iteration.

use crate::apps::{checksum_f32, AppRun, EvalApp, Launch};
use crate::support::{measure, run_simple_launched};
use aie_intrinsics::counter::metered;
use aie_intrinsics::{AccF32, Vector};
use aie_sim::{KernelCostProfile, PortTraffic, WorkloadSpec};
use cgsim_core::{FlatGraph, PortKind};
use cgsim_runtime::{compute_graph, compute_kernel, KernelLibrary, RunSpec};
use std::collections::HashMap;

/// SIMD lanes per iteration.
pub const LANES: usize = 8;
/// Output block size in bytes (Table 1): 512 f32 pixels.
pub const BLOCK_BYTES: u64 = 2048;
/// Interpolated pixels per block.
pub const BLOCK_PIXELS: usize = (BLOCK_BYTES / 4) as usize;

/// One interpolation query: the 2×2 pixel neighbourhood and the fractional
/// position inside it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PixelQuad {
    /// Top-left pixel.
    pub p00: f32,
    /// Top-right pixel.
    pub p01: f32,
    /// Bottom-left pixel.
    pub p10: f32,
    /// Bottom-right pixel.
    pub p11: f32,
    /// Fractional x offset in [0, 1).
    pub fx: f32,
    /// Fractional y offset in [0, 1).
    pub fy: f32,
}

/// One vector iteration: interpolate `LANES` quads. Weights are computed
/// with vector subtract/multiply and the four corner contributions are
/// accumulated with `fpmac` — the AMD example's instruction mix. Shared
/// between the kernel coroutine and the cost profiler.
pub fn interp_iteration(quads: &[PixelQuad]) -> Vec<f32> {
    debug_assert_eq!(quads.len(), LANES);
    let gather = |f: fn(&PixelQuad) -> f32| {
        let lanes: [f32; LANES] = std::array::from_fn(|i| f(&quads[i]));
        Vector::<f32, LANES>::from_array(lanes)
    };
    let p00 = gather(|q| q.p00);
    let p01 = gather(|q| q.p01);
    let p10 = gather(|q| q.p10);
    let p11 = gather(|q| q.p11);
    let fx = gather(|q| q.fx);
    let fy = gather(|q| q.fy);
    let one = Vector::<f32, LANES>::splat(1.0);
    let gx = one - fx;
    let gy = one - fy;

    // w00 = gx*gy, w01 = fx*gy, w10 = gx*fy, w11 = fx*fy.
    let w00 = gx * gy;
    let w01 = fx * gy;
    let w10 = gx * fy;
    let w11 = fx * fy;

    let acc = AccF32::<LANES>::zero()
        .fpmac(p00, w00)
        .fpmac(p01, w01)
        .fpmac(p10, w10)
        .fpmac(p11, w11);
    acc.to_vector().to_array().to_vec()
}

compute_kernel! {
    /// Bilinear interpolator: 8 pixel quads per vector iteration.
    #[realm(aie)]
    pub fn bilinear_kernel(quads: ReadPort<PixelQuad>, out: WritePort<f32>) {
        while let Some(batch) = quads.get_window(LANES).await {
            out.put_window(interp_iteration(&batch)).await;
        }
    }
}

/// Scalar golden reference with identical operation ordering (bit-exact).
pub fn reference(quads: &[PixelQuad]) -> Vec<f32> {
    let full = quads.len() / LANES * LANES;
    quads[..full]
        .iter()
        .map(|q| {
            let gx = 1.0 - q.fx;
            let gy = 1.0 - q.fy;
            let (w00, w01, w10, w11) = (gx * gy, q.fx * gy, gx * q.fy, q.fx * q.fy);
            // Same fpmac order: (((p00·w00) + p01·w01) + p10·w10) + p11·w11.
            0.0 + q.p00 * w00 + q.p01 * w01 + q.p10 * w10 + q.p11 * w11
        })
        .collect()
}

/// Build the single-kernel graph.
pub fn build_graph() -> FlatGraph {
    compute_graph! {
        name: bilinear,
        inputs: (quads: PixelQuad),
        body: {
            let pixels = wire::<f32>();
            bilinear_kernel(quads, pixels);
            attr(quads, "plio_name", "quads_in");
            attr(pixels, "plio_name", "pixels_out");
        },
        outputs: (pixels),
    }
    .expect("bilinear graph builds")
}

/// Deterministic synthetic image workload: smooth gradient pixels with
/// pseudo-random fractional offsets.
pub fn make_input(blocks: u64) -> Vec<PixelQuad> {
    use rand::{rngs::StdRng, RngExt, SeedableRng};
    let mut rng = StdRng::seed_from_u64(0xB111_0003);
    (0..blocks * BLOCK_PIXELS as u64)
        .map(|i| {
            let base = (i % 251) as f32;
            PixelQuad {
                p00: base,
                p01: base + rng.random_range(0.0f32..8.0),
                p10: base + rng.random_range(0.0f32..8.0),
                p11: base + rng.random_range(0.0f32..16.0),
                fx: rng.random_range(0.0f32..1.0),
                fy: rng.random_range(0.0f32..1.0),
            }
        })
        .collect()
}

/// The Table 1 / Table 2 application record.
pub struct BilinearApp;

impl EvalApp for BilinearApp {
    fn name(&self) -> &'static str {
        "bilinear"
    }

    fn block_bytes(&self) -> u64 {
        BLOCK_BYTES
    }

    fn graph(&self) -> FlatGraph {
        build_graph()
    }

    fn library(&self) -> KernelLibrary {
        KernelLibrary::with(|l| {
            l.register::<bilinear_kernel>();
        })
    }

    fn profiles(&self) -> HashMap<String, KernelCostProfile> {
        let input = make_input(1);
        let ((), ops) = metered(|| {
            let _ = interp_iteration(&input[..LANES]);
        });
        let profile = KernelCostProfile::measured(
            "bilinear_kernel",
            ops,
            vec![PortTraffic {
                elems_per_iter: LANES as u64,
                elem_bytes: std::mem::size_of::<PixelQuad>() as u64,
                kind: PortKind::Stream,
            }],
            vec![PortTraffic {
                elems_per_iter: LANES as u64,
                elem_bytes: 4,
                kind: PortKind::Stream,
            }],
        );
        measure::profile_map([profile])
    }

    fn workload(&self, blocks: u64) -> WorkloadSpec {
        WorkloadSpec {
            blocks,
            elems_per_block_in: vec![BLOCK_PIXELS as u64],
            elems_per_block_out: vec![BLOCK_PIXELS as u64],
        }
    }

    fn run_launched(&self, spec: &RunSpec, blocks: u64, launch: Launch) -> Result<AppRun, String> {
        let input = make_input(blocks);
        let expect = reference(&input);
        let graph = self.graph();
        let lib = self.library();
        let (got, run): (Vec<f32>, AppRun) =
            run_simple_launched(&graph, &lib, spec, input, launch)?;
        if got != expect {
            let first = got.iter().zip(&expect).position(|(a, b)| a != b);
            return Err(format!(
                "bilinear output mismatch: {} vs {} elements, first diff at {first:?}",
                got.len(),
                expect.len(),
            ));
        }
        Ok(AppRun {
            checksum: checksum_f32(&got),
            out_elems: got.len(),
            ..run
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use cgsim_runtime::Backend;

    #[test]
    fn kernel_matches_reference_cooperative() {
        BilinearApp
            .run_spec(&RunSpec::for_graph("bilinear"), 4)
            .unwrap();
    }

    #[test]
    fn kernel_matches_reference_threaded() {
        BilinearApp
            .run_spec(
                &RunSpec::for_graph("bilinear").backend(Backend::Threaded),
                4,
            )
            .unwrap();
    }

    #[test]
    fn corners_are_exact() {
        // fx = fy = 0 → p00 exactly; fx = 1, fy = 0 → p01.
        let q = PixelQuad {
            p00: 10.0,
            p01: 20.0,
            p10: 30.0,
            p11: 40.0,
            fx: 0.0,
            fy: 0.0,
        };
        let mut quads = [q; LANES];
        quads[1].fx = 1.0; // → p01
        quads[2].fy = 1.0; // → p10
        quads[3].fx = 1.0;
        quads[3].fy = 1.0; // → p11
        let out = interp_iteration(&quads);
        assert_eq!(out[0], 10.0);
        assert_eq!(out[1], 20.0);
        assert_eq!(out[2], 30.0);
        assert_eq!(out[3], 40.0);
    }

    #[test]
    fn center_averages() {
        let q = PixelQuad {
            p00: 0.0,
            p01: 4.0,
            p10: 8.0,
            p11: 12.0,
            fx: 0.5,
            fy: 0.5,
        };
        let out = interp_iteration(&[q; LANES]);
        assert_eq!(out[0], 6.0);
    }

    #[test]
    fn interpolation_is_bounded_by_corners() {
        for q in make_input(1).iter().take(64) {
            let v = reference(std::slice::from_ref(q).repeat(LANES).as_slice())[0];
            let lo = q.p00.min(q.p01).min(q.p10).min(q.p11);
            let hi = q.p00.max(q.p01).max(q.p10).max(q.p11);
            assert!(v >= lo - 1e-3 && v <= hi + 1e-3, "{v} outside [{lo},{hi}]");
        }
    }

    #[test]
    fn profile_is_mac_heavy_stream_kernel() {
        use aie_intrinsics::OpKind;
        let p = &BilinearApp.profiles()["bilinear_kernel"];
        // 4 weight multiplies + 4 fpmacs per 8 pixels.
        assert_eq!(p.ops.get(OpKind::VMac), 8);
        assert_eq!(p.stream_accesses(), 16);
    }

    proptest::proptest! {
        /// Vector interpolation is bit-exact against the scalar reference
        /// for arbitrary quads.
        #[test]
        fn interp_matches_reference(
            vals in proptest::collection::vec(
                (0f32..255.0, 0f32..255.0, 0f32..255.0, 0f32..255.0, 0f32..1.0, 0f32..1.0),
                LANES,
            ),
        ) {
            let quads: Vec<PixelQuad> = vals
                .into_iter()
                .map(|(p00, p01, p10, p11, fx, fy)| PixelQuad { p00, p01, p10, p11, fx, fy })
                .collect();
            let vec_out = interp_iteration(&quads);
            let scalar = reference(&quads);
            proptest::prop_assert_eq!(vec_out, scalar);
        }
    }

    #[test]
    fn quad_struct_layout() {
        assert_eq!(std::mem::size_of::<PixelQuad>(), 24);
    }

    #[test]
    fn block_accounting_matches_table1() {
        assert_eq!(BLOCK_BYTES, (BLOCK_PIXELS * 4) as u64);
        assert_eq!(BLOCK_PIXELS % LANES, 0);
    }
}
